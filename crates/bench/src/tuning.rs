//! Per-shard learned tuning experiment (beyond the paper): the
//! [`TunerStrategy`](ruskey::sharded::TunerStrategy) comparison plus
//! hot-shard mitigation, pinned as machine-checkable verdicts.
//!
//! `repro tuning` drives a 4-shard store over three workloads —
//! `uniform` (balanced mix, every shard statistically identical),
//! `skewed` (point reads concentrated on one shard's keys, point
//! writes on another's), and `shifting` (the skew swaps shards at the
//! midpoint) — once with one global Lerp agent and once with one agent
//! per shard. The ranking metric is the paper's: mean virtual ns/op
//! over the last third of missions, after the agents have had time to
//! converge. Two mitigation rows then hammer a viral key set on one
//! shard with re-homing disarmed vs armed. The verdict legs CI greps
//! as `tuning_ok`:
//!
//! * **uniform parity** — where there is no skew there is no per-shard
//!   signal to exploit, so the two strategies must land within 15% of
//!   each other (the per-shard plumbing costs nothing);
//! * **skew win-or-tie** — under skew the per-shard tuner may
//!   specialize each shard's policy (read-hot shard aggressive,
//!   write-hot shard lazy) and must finish no more than 5% behind the
//!   global agent on both skewed workloads;
//! * **mitigation drop** — with balancing armed the viral keys
//!   actually migrate (`rebalances > 0`, `rehomed_keys > 0`) and the
//!   mean observed load imbalance falls below the disarmed baseline.
//!
//! Every row also reports `tuned_missions` — missions in which some
//! shard ran a non-default policy — so a verdict computed from agents
//! that never moved a policy is visibly vacuous.

use std::collections::BTreeSet;

use bytes::Bytes;
use ruskey::db::RusKeyConfig;
use ruskey::runner::ExperimentScale;
use ruskey::sharded::ShardedRusKey;
use ruskey_workload::routing::BalanceConfig;
use ruskey_workload::{bulk_load_pairs, encode_key, shard_for_key, OpGenerator, OpMix, Operation};

/// Shards in every tuning row (matches the serving experiment).
const SHARDS: usize = 4;
/// Keys per hot pool: narrow enough to concentrate load on one shard,
/// wide enough that the shard still behaves like an LSM-tree rather
/// than a handful of memtable slots.
const POOL_KEYS: usize = 256;

/// One workload × strategy measurement.
#[derive(Debug, Clone)]
pub struct TuningRow {
    /// Workload shape: `uniform`, `skewed`, or `shifting`.
    pub workload: &'static str,
    /// Tuner strategy: `global` or `per_shard`.
    pub strategy: &'static str,
    /// Shard count.
    pub shards: usize,
    /// Missions run.
    pub missions: usize,
    /// Logical operations executed.
    pub ops_total: u64,
    /// Mean virtual ns/op over the last third of missions — the
    /// converged-tail ranking metric.
    pub tail_ns_per_op: f64,
    /// Missions in which at least one shard ran a non-default policy
    /// (zero means the comparison was vacuous).
    pub tuned_missions: usize,
    /// Final K(L1) per shard — the visible specialization.
    pub final_k1: Vec<u32>,
    /// Distinct per-shard policy vectors at the end (1 = every shard
    /// identical; > 1 only ever happens under `per_shard`).
    pub distinct_policies: usize,
}

/// One mitigation leg: the viral-key workload with re-homing disarmed
/// (`balanced = false`, sentinel threshold) or armed.
#[derive(Debug, Clone)]
pub struct MitigationRow {
    /// Whether hot-shard re-homing was armed.
    pub balanced: bool,
    /// Mean observed load imbalance (max shard ops / mean) across
    /// rounds.
    pub mean_imbalance: f64,
    /// Peak observed imbalance.
    pub peak_imbalance: f64,
    /// Imbalance after the final round.
    pub final_imbalance: f64,
    /// Balancing passes that migrated keys.
    pub rebalances: u64,
    /// Keys living away from their hash shard at the end.
    pub rehomed_keys: usize,
}

/// The whole experiment: six tuning rows, two mitigation rows, and the
/// verdict legs CI greps.
#[derive(Debug, Clone)]
pub struct TuningVerdict {
    /// Workload × strategy rows.
    pub rows: Vec<TuningRow>,
    /// `[disarmed, armed]` mitigation legs.
    pub mitigation: Vec<MitigationRow>,
    /// Uniform-workload tail ratio (worse / better strategy).
    pub uniform_ratio: f64,
    /// Uniform parity leg: the strategies land within 15%.
    pub parity_ok: bool,
    /// Skew leg: per-shard is within 5% of global (or ahead) on both
    /// skewed workloads.
    pub skew_ok: bool,
    /// Mitigation leg: armed re-homing migrated keys and dropped the
    /// mean imbalance below the disarmed baseline.
    pub mitigation_ok: bool,
    /// Non-vacuity: every tuning row saw at least one tuned mission.
    pub tuned_ok: bool,
    /// The headline verdict CI greps.
    pub ok: bool,
}

/// Lerp cadence scaled to the mission budget, so agents begin tuning
/// inside the first third of the run instead of waiting the paper's
/// 60-mission warmup.
fn tuning_cfg(scale: &ExperimentScale) -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lerp.min_tune_missions = (scale.missions / 5).clamp(4, 10);
    cfg.lerp.stability_window = (scale.missions / 8).clamp(3, 6);
    cfg
}

/// The first `POOL_KEYS` loaded keys that hash-home on `shard`.
fn shard_pool(scale: &ExperimentScale, shard: usize) -> Vec<Bytes> {
    (0..scale.load_entries)
        .map(|id| encode_key(id, scale.key_len))
        .filter(|k| shard_for_key(k, SHARDS) == shard)
        .take(POOL_KEYS)
        .collect()
}

/// Pre-generates the mission schedule for one workload shape, shared
/// verbatim by both strategies so the comparison is apples-to-apples.
///
/// `skewed` redirects ~90% of point reads onto shard 0's pool and ~90%
/// of point writes onto shard 2's pool — shard 0 becomes read-hot
/// (favoring an aggressive policy) while shard 2 becomes write-hot
/// (favoring a lazy one), exactly the split a single global K cannot
/// serve. `shifting` swaps the two pools at the midpoint.
fn tuning_missions(scale: &ExperimentScale, workload: &'static str) -> Vec<Vec<Operation>> {
    let spec = scale.spec().with_mix(OpMix::balanced());
    let mut g = OpGenerator::new(spec, scale.seed.wrapping_add(11));
    let pool_a = shard_pool(scale, 0);
    let pool_b = shard_pool(scale, 2);
    let mut ctr = 0usize;
    let mut missions = Vec::with_capacity(scale.missions);
    for m in 0..scale.missions {
        let flip = workload == "shifting" && m >= scale.missions / 2;
        let (read_pool, write_pool) = if flip {
            (&pool_b, &pool_a)
        } else {
            (&pool_a, &pool_b)
        };
        let mut ops = Vec::with_capacity(scale.mission_size);
        for op in g.take_ops(scale.mission_size) {
            ctr += 1;
            // 10% of ops keep their generated key: background traffic
            // that keeps every shard minimally alive.
            if workload == "uniform" || ctr.is_multiple_of(10) {
                ops.push(op);
                continue;
            }
            ops.push(match op {
                Operation::Get { .. } => Operation::Get {
                    key: read_pool[ctr % read_pool.len()].clone(),
                },
                Operation::Put { value, .. } => Operation::Put {
                    key: write_pool[ctr % write_pool.len()].clone(),
                    value,
                },
                other => other,
            });
        }
        missions.push(ops);
    }
    missions
}

/// Runs one strategy over a pre-generated mission schedule.
fn run_tuning_row(
    scale: &ExperimentScale,
    workload: &'static str,
    strategy: &'static str,
    missions: &[Vec<Operation>],
) -> TuningRow {
    let cfg = tuning_cfg(scale);
    let mut db = if strategy == "global" {
        ShardedRusKey::with_lerp(cfg, SHARDS, scale.disk())
    } else {
        ShardedRusKey::with_per_shard_lerp(cfg, SHARDS, scale.disk())
    };
    db.bulk_load(bulk_load_pairs(
        scale.load_entries,
        scale.key_len,
        scale.value_len,
        scale.seed,
    ));
    let mut ns_per_op = Vec::with_capacity(missions.len());
    let mut ops_total = 0u64;
    let mut tuned_missions = 0usize;
    let mut final_shard_policies: Vec<Vec<u32>> = Vec::new();
    for ops in missions {
        let r = db.run_mission(ops);
        ops_total += r.ops;
        ns_per_op.push(r.ns_per_op());
        if r.shard_policies_after.iter().flatten().any(|&k| k != 1) {
            tuned_missions += 1;
        }
        final_shard_policies = r.shard_policies_after.clone();
    }
    let tail = ns_per_op.len().div_ceil(3);
    let slice = &ns_per_op[ns_per_op.len() - tail..];
    let tail_ns_per_op = slice.iter().sum::<f64>() / slice.len() as f64;
    let distinct_policies = final_shard_policies.iter().collect::<BTreeSet<_>>().len();
    TuningRow {
        workload,
        strategy,
        shards: SHARDS,
        missions: missions.len(),
        ops_total,
        tail_ns_per_op,
        tuned_missions,
        final_k1: final_shard_policies
            .iter()
            .map(|p| p.first().copied().unwrap_or(1))
            .collect(),
        distinct_policies,
    }
}

/// Runs the viral-key workload on an untuned store with re-homing
/// disarmed (sentinel threshold: the sketch observes, nothing moves)
/// or armed, and reports the observed imbalance trajectory.
fn run_mitigation_row(scale: &ExperimentScale, balanced: bool) -> MitigationRow {
    let hot_shard = 1usize;
    let mut db = ShardedRusKey::untuned(RusKeyConfig::scaled_default(), SHARDS, scale.disk());
    db.bulk_load(bulk_load_pairs(
        scale.load_entries,
        scale.key_len,
        scale.value_len,
        scale.seed,
    ));
    db.enable_balancing(BalanceConfig {
        imbalance_threshold: if balanced { 1.25 } else { f64::INFINITY },
        min_ops: (scale.mission_size as u64 / 4).max(64),
        max_moves: 4,
        capacity: 32,
        decay: 0.5,
    });
    let viral: Vec<Bytes> = (0..scale.load_entries)
        .map(|id| encode_key(id, scale.key_len))
        .filter(|k| shard_for_key(k, SHARDS) == hot_shard)
        .take(8)
        .collect();
    // Mitigation converges in a handful of passes; a bounded round
    // count keeps the leg cheap at every scale.
    let rounds = scale.missions.clamp(8, 40);
    let (mut sum, mut peak, mut last) = (0.0f64, 0.0f64, 0.0f64);
    for round in 0..rounds {
        let mut ops = Vec::with_capacity(scale.mission_size);
        for i in 0..scale.mission_size {
            let idx = (round * scale.mission_size + i) as u64;
            if i.is_multiple_of(10) {
                // Cold background traffic so every shard exists in the
                // sketch.
                ops.push(Operation::Get {
                    key: encode_key((idx * 31) % scale.load_entries, scale.key_len),
                });
            } else if i.is_multiple_of(4) {
                ops.push(Operation::Put {
                    key: viral[i % viral.len()].clone(),
                    value: encode_key(idx, scale.value_len),
                });
            } else {
                ops.push(Operation::Get {
                    key: viral[i % viral.len()].clone(),
                });
            }
        }
        db.run_mission(&ops);
        let im = db.load_imbalance();
        sum += im;
        peak = peak.max(im);
        last = im;
    }
    MitigationRow {
        balanced,
        mean_imbalance: sum / rounds as f64,
        peak_imbalance: peak,
        final_imbalance: last,
        rebalances: db.rebalances(),
        rehomed_keys: db.rehomed_keys(),
    }
}

/// Runs the whole tuning experiment: three workloads × two strategies
/// plus the two mitigation legs, folded into the `tuning_ok` verdict.
pub fn tuning(scale: &ExperimentScale) -> TuningVerdict {
    let mut rows = Vec::with_capacity(6);
    for workload in ["uniform", "skewed", "shifting"] {
        let missions = tuning_missions(scale, workload);
        for strategy in ["global", "per_shard"] {
            rows.push(run_tuning_row(scale, workload, strategy, &missions));
        }
    }
    let mitigation = vec![
        run_mitigation_row(scale, false),
        run_mitigation_row(scale, true),
    ];

    let tail = |w: &str, s: &str| {
        rows.iter()
            .find(|r| r.workload == w && r.strategy == s)
            .map(|r| r.tail_ns_per_op)
            .expect("row exists")
    };
    let (ug, up) = (tail("uniform", "global"), tail("uniform", "per_shard"));
    let uniform_ratio = ug.max(up) / ug.min(up).max(1e-9);
    let parity_ok = uniform_ratio <= 1.15;
    let skew_ok = ["skewed", "shifting"]
        .iter()
        .all(|w| tail(w, "per_shard") <= tail(w, "global") * 1.05);
    let (off, on) = (&mitigation[0], &mitigation[1]);
    let mitigation_ok =
        on.rebalances > 0 && on.rehomed_keys > 0 && on.mean_imbalance < off.mean_imbalance;
    let tuned_ok = rows.iter().all(|r| r.tuned_missions > 0);
    let ok = parity_ok && skew_ok && mitigation_ok && tuned_ok;
    TuningVerdict {
        rows,
        mitigation,
        uniform_ratio,
        parity_ok,
        skew_ok,
        mitigation_ok,
        tuned_ok,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            load_entries: 2000,
            mission_size: 200,
            missions: 24,
            ..ExperimentScale::tiny()
        }
    }

    #[test]
    fn tuning_verdict_holds_at_tiny_scale() {
        let v = tuning(&tiny());
        assert_eq!(v.rows.len(), 6);
        assert!(v.parity_ok, "uniform ratio {}", v.uniform_ratio);
        assert!(v.skew_ok, "per-shard lost the skewed workloads");
        assert!(v.mitigation_ok, "armed balancing must drop the imbalance");
        assert!(v.tuned_ok, "some row never tuned — vacuous comparison");
        let off = &v.mitigation[0];
        let on = &v.mitigation[1];
        assert_eq!(off.rebalances, 0, "sentinel threshold must never move");
        assert!(on.rebalances > 0 && on.rehomed_keys > 0);
        assert!(on.mean_imbalance < off.mean_imbalance);
        // Only the per-shard strategy can diverge across shards.
        for r in &v.rows {
            assert_eq!(r.final_k1.len(), SHARDS);
            if r.strategy == "global" {
                assert_eq!(
                    r.distinct_policies, 1,
                    "global rows must agree across shards"
                );
            }
        }
        assert!(v.ok, "tuning_ok must hold");
    }
}
