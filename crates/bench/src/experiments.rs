//! One function per paper table/figure (see DESIGN.md §4 for the index).

use ruskey::db::RusKeyConfig;
use ruskey::lerp::{Lerp, LerpConfig, PropagationScheme};
use ruskey::runner::{
    converged_mean_latency, prepared_store, rank, run_dynamic, run_static, ExperimentScale,
    MissionRecord,
};
use ruskey::tuner::{
    BruteForceLerp, FixedPolicy, GreedyHeuristic, LazyLeveling, NoOpTuner, PerLevelNoPropagation,
    Tuner,
};
use ruskey_analysis::TransitionScenario;
use ruskey_lsm::TransitionStrategy;
use ruskey_workload::ycsb::Preset;
use ruskey_workload::{DynamicWorkload, KeyDistribution, OpGenerator, OpMix};

/// One method's mission time series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Method label (e.g. "RusKey", "K=1").
    pub method: String,
    /// Per-mission records.
    pub records: Vec<MissionRecord>,
}

/// A complete single-workload comparison (one sub-figure).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Workload label (e.g. "read-heavy").
    pub workload: String,
    /// One series per method.
    pub series: Vec<Series>,
}

fn lerp_tuner(scale: &ExperimentScale, monkey: bool) -> Box<dyn Tuner> {
    let scheme = if monkey {
        PropagationScheme::Monkey
    } else {
        PropagationScheme::Uniform
    };
    let mut cfg = LerpConfig::paper_default(scheme);
    cfg.seed = scale.seed.wrapping_mul(31).wrapping_add(7);
    Box::new(Lerp::new(cfg))
}

fn base_cfg(monkey: bool) -> RusKeyConfig {
    if monkey {
        RusKeyConfig::scaled_monkey()
    } else {
        RusKeyConfig::scaled_default()
    }
}

/// The paper's three fixed baselines: Aggressive (K=1), Moderate (K=5),
/// Lazy (K=10 = T).
fn fixed_baselines() -> Vec<(String, Box<dyn Tuner>)> {
    vec![
        (
            "Aggressive(K=1)".into(),
            Box::new(FixedPolicy::aggressive()) as Box<dyn Tuner>,
        ),
        ("Moderate(K=5)".into(), Box::new(FixedPolicy::moderate())),
        ("Lazy(K=10)".into(), Box::new(FixedPolicy::lazy())),
    ]
}

// ---------------------------------------------------------------------
// Figure 6 — static workloads, uniform Bloom scheme
// ---------------------------------------------------------------------

/// Fig. 6: RusKey self-navigates to the optimal design on static workloads
/// (read-heavy / write-heavy / balanced), uniform scheme, vs the three
/// fixed baselines.
pub fn fig6(scale: &ExperimentScale) -> Vec<Comparison> {
    static_comparison(scale, false, KeyDistribution::Uniform, false)
}

/// Fig. 8: the same comparison under the Monkey scheme, plus Lazy-Leveling.
pub fn fig8(scale: &ExperimentScale) -> Vec<Comparison> {
    static_comparison(scale, true, KeyDistribution::Uniform, true)
}

/// Fig. 11 (a–c): the same comparison on YCSB Zipfian workloads.
pub fn fig11_abc(scale: &ExperimentScale) -> Vec<Comparison> {
    static_comparison(scale, false, KeyDistribution::zipfian_default(), false)
}

fn static_comparison(
    scale: &ExperimentScale,
    monkey: bool,
    dist: KeyDistribution,
    with_lazy_leveling: bool,
) -> Vec<Comparison> {
    let workloads = [
        ("read-heavy", OpMix::read_heavy()),
        ("write-heavy", OpMix::write_heavy()),
        ("balanced", OpMix::balanced()),
    ];
    workloads
        .iter()
        .map(|(label, mix)| {
            let spec = scale.spec().with_mix(*mix).with_distribution(dist.clone());
            let mut series = vec![Series {
                method: "RusKey".into(),
                records: run_static(
                    base_cfg(monkey),
                    scale,
                    lerp_tuner(scale, monkey),
                    spec.clone(),
                ),
            }];
            for (name, tuner) in fixed_baselines() {
                series.push(Series {
                    method: name,
                    records: run_static(base_cfg(monkey), scale, tuner, spec.clone()),
                });
            }
            if with_lazy_leveling {
                series.push(Series {
                    method: "Lazy-Leveling".into(),
                    records: run_static(
                        base_cfg(monkey),
                        scale,
                        Box::new(LazyLeveling),
                        spec.clone(),
                    ),
                });
            }
            Comparison {
                workload: (*label).into(),
                series,
            }
        })
        .collect()
}

/// Fig. 11 (d): 50% range lookups / 50% updates on YCSB Zipfian.
pub fn fig11_range(scale: &ExperimentScale) -> Comparison {
    let spec = scale
        .spec()
        .with_mix(OpMix::range_balanced())
        .with_distribution(KeyDistribution::zipfian_default());
    let mut series = vec![Series {
        method: "RusKey".into(),
        records: run_static(
            base_cfg(false),
            scale,
            lerp_tuner(scale, false),
            spec.clone(),
        ),
    }];
    for (name, tuner) in fixed_baselines() {
        series.push(Series {
            method: name,
            records: run_static(base_cfg(false), scale, tuner, spec.clone()),
        });
    }
    Comparison {
        workload: "range-balanced".into(),
        series,
    }
}

// ---------------------------------------------------------------------
// Figure 7 + Table 3 — dynamic workload
// ---------------------------------------------------------------------

/// Labels of the five Fig. 7 sessions, in order.
pub const FIG7_SESSIONS: [&str; 5] = [
    "read-heavy",
    "balanced",
    "write-heavy",
    "write-inclined",
    "read-inclined",
];

/// Fig. 7: the five-session dynamic workload, RusKey vs fixed baselines.
pub fn fig7(scale: &ExperimentScale) -> Vec<Series> {
    let mut out = Vec::new();
    let mk_workload = |seed: u64| {
        let g = OpGenerator::new(scale.spec(), seed);
        DynamicWorkload::paper_fig7(g, scale.missions, scale.mission_size)
    };
    out.push(Series {
        method: "RusKey".into(),
        records: run_dynamic(
            base_cfg(false),
            scale,
            lerp_tuner(scale, false),
            mk_workload(scale.seed.wrapping_add(1)),
        ),
    });
    for (name, tuner) in fixed_baselines() {
        out.push(Series {
            method: name,
            records: run_dynamic(
                base_cfg(false),
                scale,
                tuner,
                mk_workload(scale.seed.wrapping_add(1)),
            ),
        });
    }
    out
}

/// A Table 3 / Fig. 12-style ranking: per-session mean latency (converged
/// tail) and per-method average rank.
#[derive(Debug, Clone)]
pub struct RankingTable {
    /// Method names.
    pub methods: Vec<String>,
    /// `latency[m][s]` = method m's tail latency in session s (ms/op).
    pub latency: Vec<Vec<f64>>,
    /// `ranks[m][s]` = method m's rank in session s (1 = best).
    pub ranks: Vec<Vec<usize>>,
    /// Average rank per method.
    pub avg_rank: Vec<f64>,
}

/// Builds the ranking table from per-method session series.
pub fn ranking_from_series(series: &[Series], sessions: usize) -> RankingTable {
    let methods: Vec<String> = series.iter().map(|s| s.method.clone()).collect();
    // Per-method per-session tail latency.
    let latency: Vec<Vec<f64>> = series
        .iter()
        .map(|s| {
            (0..sessions)
                .map(|sess| {
                    let recs: Vec<MissionRecord> = s
                        .records
                        .iter()
                        .filter(|r| r.session == sess)
                        .cloned()
                        .collect();
                    if recs.is_empty() {
                        f64::NAN
                    } else {
                        converged_mean_latency(&recs, 0.4)
                    }
                })
                .collect()
        })
        .collect();
    let mut ranks = vec![vec![0usize; sessions]; series.len()];
    for sess in 0..sessions {
        let col: Vec<f64> = latency.iter().map(|row| row[sess]).collect();
        let r = rank(&col);
        for (m, rr) in r.into_iter().enumerate() {
            ranks[m][sess] = rr;
        }
    }
    let avg_rank = ranks
        .iter()
        .map(|row| row.iter().sum::<usize>() as f64 / sessions as f64)
        .collect();
    RankingTable {
        methods,
        latency,
        ranks,
        avg_rank,
    }
}

// ---------------------------------------------------------------------
// Figure 9 — novel per-level policy settings vs Lazy-Leveling
// ---------------------------------------------------------------------

/// Result of the Fig. 9 per-level study.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Method label.
    pub method: String,
    /// End-to-end mean latency over the measured window (ms/op).
    pub end_to_end_ms_per_op: f64,
    /// Final per-level policies.
    pub policies: Vec<u32>,
    /// Per-level latency per op (ms) over the measured window.
    pub per_level_ms_per_op: Vec<f64>,
}

/// Fig. 9: under the Monkey scheme on a balanced workload, RusKey adopts a
/// novel per-level policy layout (aggressive on top, lazier deeper) and
/// beats Lazy-Leveling end-to-end and per level.
pub fn fig9(scale: &ExperimentScale) -> Vec<Fig9Result> {
    let spec = scale.spec().with_mix(OpMix::balanced());
    let methods: Vec<(String, Box<dyn Tuner>)> = vec![
        ("RusKey".into(), lerp_tuner(scale, true)),
        ("Lazy-Leveling".into(), Box::new(LazyLeveling)),
    ];
    methods
        .into_iter()
        .map(|(method, tuner)| {
            let records = run_static(base_cfg(true), scale, tuner, spec.clone());
            let tail_start = records.len() - (records.len() / 3).max(1);
            let tail = &records[tail_start..];
            let end_to_end =
                tail.iter().map(|r| r.latency_ms_per_op).sum::<f64>() / tail.len() as f64;
            let policies = tail.last().unwrap().policies.clone();
            // Per-level latency needs the mission reports' level stats; we
            // recompute from the recorded series: MissionRecord keeps only
            // aggregate numbers, so re-run the tail measurement directly.
            let per_level = per_level_latency(scale, true, &spec, &policies);
            Fig9Result {
                method,
                end_to_end_ms_per_op: end_to_end,
                policies,
                per_level_ms_per_op: per_level,
            }
        })
        .collect()
}

/// Measures steady-state per-level latency for a fixed policy layout.
fn per_level_latency(
    scale: &ExperimentScale,
    monkey: bool,
    spec: &ruskey_workload::WorkloadSpec,
    policies: &[u32],
) -> Vec<f64> {
    let mut db = prepared_store(base_cfg(monkey), scale, Box::new(NoOpTuner));
    for (l, &k) in policies.iter().enumerate() {
        db.tree_mut().set_policy(l, k);
    }
    let mut g = OpGenerator::new(spec.clone(), scale.seed.wrapping_add(99));
    let missions = (scale.missions / 4).max(5);
    let mut level_ns = Vec::new();
    let mut ops_total = 0u64;
    for _ in 0..missions {
        let ops = g.take_ops(scale.mission_size);
        let report = db.run_mission(&ops);
        ops_total += report.ops;
        if level_ns.len() < report.levels.len() {
            level_ns.resize(report.levels.len(), 0u64);
        }
        for (i, l) in report.levels.iter().enumerate() {
            level_ns[i] += l.latency_ns;
        }
    }
    level_ns
        .into_iter()
        .map(|ns| ns as f64 / ops_total.max(1) as f64 / 1e6)
        .collect()
}

// ---------------------------------------------------------------------
// Figure 10 — transition micro-benchmark
// ---------------------------------------------------------------------

/// Fig. 10: per-mission write/read latency around a K=1 → K=10 transition
/// at the midpoint, for greedy/lazy/flexible transitions.
pub fn fig10(scale: &ExperimentScale) -> Vec<Series> {
    TransitionStrategy::ALL
        .iter()
        .map(|&strategy| {
            let cfg = base_cfg(false).with_transition(strategy);
            let mut db = prepared_store(cfg, scale, Box::new(NoOpTuner));
            db.tree_mut().set_policy_all(1);
            let spec = scale.spec().with_mix(OpMix::balanced());
            let mut g = OpGenerator::new(spec, scale.seed.wrapping_add(5));
            let half = scale.missions / 2;
            let mut records = Vec::with_capacity(scale.missions);
            for m in 0..scale.missions {
                if m == half {
                    // The transition under test: K = 1 -> K = 10 everywhere.
                    let levels = db.tree().level_count();
                    for l in 0..levels {
                        db.tree_mut().set_policy(l, 10);
                    }
                }
                let ops = g.take_ops(scale.mission_size);
                let report = db.run_mission(&ops);
                let lookup_ns: u64 = report.levels.iter().map(|l| l.lookup_ns).sum();
                records.push(MissionRecord {
                    mission: m,
                    session: usize::from(m >= half),
                    latency_ms_per_op: report.ns_per_op() / 1e6,
                    write_latency_s: report.end_to_end_ns.saturating_sub(lookup_ns) as f64 / 1e9,
                    read_latency_s: lookup_ns as f64 / 1e9,
                    policy_l1: report.policies_after.first().copied().unwrap_or(1),
                    policies: report.policies_after.clone(),
                    model_update_ns: 0,
                    real_process_ns: report.real_process_ns,
                    converged: true,
                });
            }
            Series {
                method: strategy.name().into(),
                records,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 12 — greedy threshold heuristics
// ---------------------------------------------------------------------

/// Fig. 12: greedy threshold tuners vs RusKey on the Fig. 7 dynamic
/// workload, with the average-rank table.
pub fn fig12(scale: &ExperimentScale) -> Vec<Series> {
    let mk_workload = |seed: u64| {
        let g = OpGenerator::new(scale.spec(), seed);
        DynamicWorkload::paper_fig7(g, scale.missions, scale.mission_size)
    };
    let mut out = vec![Series {
        method: "RusKey".into(),
        records: run_dynamic(
            base_cfg(false),
            scale,
            lerp_tuner(scale, false),
            mk_workload(scale.seed.wrapping_add(1)),
        ),
    }];
    for h in GreedyHeuristic::paper_settings() {
        let name = h.name();
        out.push(Series {
            method: name,
            records: run_dynamic(
                base_cfg(false),
                scale,
                Box::new(h),
                mk_workload(scale.seed.wrapping_add(1)),
            ),
        });
    }
    out
}

// ---------------------------------------------------------------------
// Figure 13 — model update cost
// ---------------------------------------------------------------------

/// One row of the Fig. 13 comparison.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Workload + scheme label (e.g. "balanced-U").
    pub label: String,
    /// Mean LSM processing time per mission — virtual seconds (what a real
    /// deployment's I/O time would be).
    pub lsm_virtual_s: f64,
    /// Mean LSM processing time per mission — real wall seconds in the
    /// simulator.
    pub lsm_real_s: f64,
    /// Mean RL model update time per mission — real wall seconds.
    pub model_real_s: f64,
    /// Mission size this was measured at.
    pub mission_size: usize,
}

impl Fig13Row {
    /// Ratio of model update time to LSM time at the measured scale.
    pub fn ratio_measured(&self) -> f64 {
        self.model_real_s / self.lsm_virtual_s.max(1e-12)
    }

    /// Extrapolated ratio at the paper's mission size (50 000 ops): LSM
    /// time grows linearly with mission size while the model update is a
    /// constant number of gradient steps per mission.
    pub fn ratio_at_paper_scale(&self) -> f64 {
        let scale = 50_000.0 / self.mission_size as f64;
        self.model_real_s / (self.lsm_virtual_s * scale).max(1e-12)
    }
}

/// Fig. 13: RusKey's model update time per mission is insignificant next to
/// LSM operation time, across workloads and Bloom schemes.
pub fn fig13(scale: &ExperimentScale) -> Vec<Fig13Row> {
    let combos = [
        ("read-heavy-U", OpMix::read_heavy(), false),
        ("write-heavy-U", OpMix::write_heavy(), false),
        ("balanced-U", OpMix::balanced(), false),
        ("read-heavy-M", OpMix::read_heavy(), true),
        ("write-heavy-M", OpMix::write_heavy(), true),
        ("balanced-M", OpMix::balanced(), true),
    ];
    combos
        .iter()
        .map(|(label, mix, monkey)| {
            let spec = scale.spec().with_mix(*mix);
            let records = run_static(base_cfg(*monkey), scale, lerp_tuner(scale, *monkey), spec);
            let n = records.len() as f64;
            let virt = records.iter().map(|r| r.latency_ms_per_op).sum::<f64>() / 1e3
                * scale.mission_size as f64
                / n;
            let real = records
                .iter()
                .map(|r| r.real_process_ns as f64)
                .sum::<f64>()
                / n
                / 1e9;
            let model = records
                .iter()
                .map(|r| r.model_update_ns as f64)
                .sum::<f64>()
                / n
                / 1e9;
            Fig13Row {
                label: (*label).into(),
                lsm_virtual_s: virt,
                lsm_real_s: real,
                model_real_s: model,
                mission_size: scale.mission_size,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 2 — transition costs: analytic + measured
// ---------------------------------------------------------------------

/// Analytic and measured transition costs for one strategy.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Strategy name.
    pub strategy: String,
    /// Analytic additional cost from §4.3 (I/Os), paper case study.
    pub analytic_ios: f64,
    /// Measured page I/O issued *at the moment of the transition* (pages).
    pub measured_immediate_pages: u64,
    /// Measured extra pages over the post-transition window versus a tree
    /// born with the new policy.
    pub measured_additional_pages: i64,
}

/// Table 2: the §4.3 case-study numbers (greedy 125, lazy 3.75, flexible
/// 2.5 I/Os) plus live measurements from the engine.
pub fn table2(scale: &ExperimentScale) -> Vec<Table2Row> {
    let s = TransitionScenario::paper_case_study();
    let analytic = [
        ("greedy", s.additional_cost_greedy()),
        ("lazy", s.additional_cost_lazy()),
        ("flexible", s.additional_cost_flexible()),
    ];

    // Baseline: a store born with the new policy processes the same window.
    let window_pages = |strategy: Option<TransitionStrategy>, k_old: u32, k_new: u32| {
        let cfg = base_cfg(false).with_transition(strategy.unwrap_or(TransitionStrategy::Flexible));
        let mut db = prepared_store(cfg, scale, Box::new(NoOpTuner));
        db.tree_mut().set_policy_all(k_old);
        let spec = scale.spec().with_mix(OpMix::balanced());
        let mut g = OpGenerator::new(spec, scale.seed.wrapping_add(17));
        // Warm up so the structure reflects k_old.
        for _ in 0..3 {
            let ops = g.take_ops(scale.mission_size);
            db.run_mission(&ops);
        }
        let before = db.tree().storage().metrics();
        if strategy.is_some() {
            db.tree_mut().set_policy_all(k_new);
        }
        let immediate = db.tree().storage().metrics().delta(&before);
        let m0 = db.tree().storage().metrics();
        for _ in 0..6 {
            let ops = g.take_ops(scale.mission_size);
            db.run_mission(&ops);
        }
        let window = db.tree().storage().metrics().delta(&m0);
        (immediate.page_ops(), window.page_ops())
    };

    // Reference: born with K = 5 -> switched to 4 (the case-study change).
    let (_, reference) = window_pages(None, 4, 4);
    TransitionStrategy::ALL
        .iter()
        .zip(analytic)
        .map(|(&strategy, (name, analytic_ios))| {
            let (immediate, window) = window_pages(Some(strategy), 5, 4);
            Table2Row {
                strategy: name.into(),
                analytic_ios,
                measured_immediate_pages: immediate,
                measured_additional_pages: window as i64 - reference as i64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// §7 brute-force comparison
// ---------------------------------------------------------------------

/// Result of the brute-force learning comparison.
#[derive(Debug, Clone)]
pub struct BruteForceRow {
    /// Method label.
    pub method: String,
    /// Did the tuner converge within the budget?
    pub converged: bool,
    /// Mission index of convergence (if any).
    pub converged_at: Option<usize>,
    /// Tail mean latency (ms/op).
    pub tail_latency_ms: f64,
    /// Total model update time (s).
    pub model_update_s: f64,
}

/// §7 "Brute-force learning approaches can be impractical": level-based
/// Lerp vs a single whole-tree DDPG (action space `O(T^L)`) vs per-level
/// RL without propagation.
///
/// The paper runs this on the balanced workload with a 24-hour budget; at
/// our scale the contrast is sharpest on the write-heavy mix, where Lerp
/// converges within ~70 missions while the brute-force variants keep
/// wandering.
pub fn bruteforce(scale: &ExperimentScale) -> Vec<BruteForceRow> {
    let spec = scale.spec().with_mix(OpMix::write_heavy());
    let methods: Vec<(String, Box<dyn Tuner>)> = vec![
        (
            "RusKey (level-based + propagation)".into(),
            lerp_tuner(scale, false),
        ),
        (
            "Brute-force whole-tree RL".into(),
            Box::new(BruteForceLerp::new(4, scale.seed)),
        ),
        (
            "Per-level RL, no propagation".into(),
            Box::new(PerLevelNoPropagation::new(4, scale.seed)),
        ),
    ];
    methods
        .into_iter()
        .map(|(method, tuner)| {
            let records = run_static(base_cfg(false), scale, tuner, spec.clone());
            let converged_at = records.iter().position(|r| r.converged);
            let tail = converged_mean_latency(&records, 0.3);
            let model_s = records.iter().map(|r| r.model_update_ns).sum::<u64>() as f64 / 1e9;
            BruteForceRow {
                method,
                converged: converged_at.is_some(),
                converged_at,
                tail_latency_ms: tail,
                model_update_s: model_s,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// YCSB presets sweep (supporting experiment)
// ---------------------------------------------------------------------

/// Runs every YCSB preset against RusKey and the fixed baselines,
/// returning tail latencies. Used by the `ycsb_bench` example.
pub fn ycsb_sweep(
    scale: &ExperimentScale,
    presets: &[Preset],
) -> Vec<(String, Vec<(String, f64)>)> {
    presets
        .iter()
        .map(|p| {
            let spec = ruskey_workload::WorkloadSpec {
                key_space: scale.load_entries,
                key_len: scale.key_len,
                value_len: scale.value_len,
                ..p.spec(scale.load_entries)
            };
            let mut rows = vec![(
                "RusKey".to_string(),
                converged_mean_latency(
                    &run_static(
                        base_cfg(false),
                        scale,
                        lerp_tuner(scale, false),
                        spec.clone(),
                    ),
                    0.3,
                ),
            )];
            for (name, tuner) in fixed_baselines() {
                rows.push((
                    name,
                    converged_mean_latency(
                        &run_static(base_cfg(false), scale, tuner, spec.clone()),
                        0.3,
                    ),
                ));
            }
            (p.label().to_string(), rows)
        })
        .collect()
}
