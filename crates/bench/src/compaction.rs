//! Background-compaction experiment (beyond the paper): tail latency of
//! a write-heavy mission mix with structural work on vs off the hot path.
//!
//! `repro compaction` drives the same deterministic put/delete/get mix
//! against two [`FlsmTree`] variants over the simulated device:
//!
//! * **inline**: the classic write path — a full memtable flushes (and a
//!   full level cascades) inside the `put` that tripped it, so the
//!   structural spike lands on that operation's latency;
//! * **background**: `background_maintenance` enabled — flushes and
//!   compactions run as bounded [`FlsmTree::maintain`] steps at mission
//!   boundaries (every [`BOUNDARY_OPS`] operations), off every
//!   operation's path, exactly as the shard workers interleave them.
//!
//! Every operation's latency is read off the tree's virtual clock, so
//! the comparison is deterministic and device-model-exact. Both variants
//! verify reads against an in-memory model *while merges are in flight*
//! and pin a mid-run [`ruskey_lsm::TreeSnapshot`] across the remaining
//! structural churn; the verdicts conjoin into the top-level
//! `compaction_ok` flag CI greps from the JSON output (background p99 no
//! worse than inline p99, zero read divergence, background compactions
//! actually observed).

use std::collections::BTreeMap;

use bytes::Bytes;
use ruskey::runner::ExperimentScale;
use ruskey_lsm::{FlsmTree, LsmConfig};
use ruskey_storage::SimulatedDisk;
use ruskey_workload::encode_key;

/// Operations between maintenance boundaries in the background variant —
/// the bench's stand-in for the shard workers' per-mission lane.
const BOUNDARY_OPS: u64 = 32;

/// Maintenance steps granted per boundary (matches the shard workers).
const BOUNDARY_STEPS: u64 = 4;

/// One variant's measurement.
#[derive(Debug, Clone)]
pub struct CompactionRow {
    /// `"inline"` or `"background"`.
    pub variant: &'static str,
    /// Operations driven (puts + deletes + gets).
    pub ops: u64,
    /// Median per-op latency (virtual ns).
    pub p50_ns: u64,
    /// 99th-percentile per-op latency (virtual ns) — the headline: the
    /// structural spikes inline mode pays on the op path.
    pub p99_ns: u64,
    /// Worst single-op latency (virtual ns).
    pub max_ns: u64,
    /// Memtable flushes over the run.
    pub flushes: u64,
    /// Background maintenance steps applied (0 for `"inline"`).
    pub bg_compactions: u64,
    /// Virtual ns the write path spent blocked on structural work.
    pub stall_ns: u64,
    /// Structural debt outstanding at the end of the run (gauge).
    pub pending_compaction_bytes: u64,
    /// Reads verified against the in-memory model, including reads
    /// issued while a merge was in flight and through the pinned
    /// mid-run snapshot.
    pub equivalence_checks: u64,
    /// All of the row's invariants held (zero read divergence; for
    /// `"background"` also: compactions observed and p99 no worse than
    /// the inline row's).
    pub ok: bool,
}

/// Drives the write-heavy mix against one variant. `inline_p99` is the
/// inline row's reading, used by the background row's verdict.
fn run_variant(
    scale: &ExperimentScale,
    background: bool,
    inline_p99: Option<u64>,
) -> CompactionRow {
    let variant = if background { "background" } else { "inline" };
    let disk = SimulatedDisk::new(scale.page_size, scale.cost);
    let cfg = LsmConfig {
        buffer_bytes: 8192,
        size_ratio: 4,
        initial_policy: 1,
        background_maintenance: background,
        l0_stall_runs: 16,
        ..LsmConfig::scaled_default()
    };
    let mut tree = FlsmTree::new(cfg, disk);

    let ops = ((scale.mission_size * scale.missions) as u64).max(2_000);
    let key_space = scale.load_entries.max(1);
    let value = Bytes::from(vec![b'v'; scale.value_len]);
    let key = |i: u64| encode_key(i % key_space, scale.key_len);

    let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(ops as usize);
    let mut checks = 0u64;
    let mut mismatches = 0u64;
    let mut pinned: Option<(ruskey_lsm::TreeSnapshot, BTreeMap<Bytes, Bytes>)> = None;

    for i in 0..ops {
        // Write-heavy mix: 70% puts, 10% deletes, 20% gets, keys striding
        // the space so levels fill and overwrite garbage accumulates.
        let k = key(i.wrapping_mul(7919));
        let t0 = tree.storage().clock().now_ns();
        match i % 10 {
            7 => {
                tree.delete(k.clone());
                model.remove(&k);
            }
            8 | 9 => {
                let got = tree.get(&k);
                checks += 1;
                if got.as_ref() != model.get(&k) {
                    mismatches += 1;
                }
            }
            _ => {
                tree.put(k.clone(), value.clone());
                model.insert(k, value.clone());
            }
        }
        latencies.push(tree.storage().clock().now_ns() - t0);

        if background && (i + 1) % BOUNDARY_OPS == 0 {
            // The mission boundary: deferred structural work runs here,
            // outside every timed operation above.
            tree.maintain(BOUNDARY_STEPS);
            if tree.has_pending_compaction() {
                // Reads racing the in-flight merge must already agree.
                let probe = key((i + 1).wrapping_mul(7919));
                checks += 1;
                if tree.get(&probe).as_ref() != model.get(&probe) {
                    mismatches += 1;
                }
            }
        }
        if i == ops / 2 {
            // Pin the mid-run structure: the second half's merges retire
            // the runs under this snapshot, and it must keep reading the
            // frozen state regardless.
            tree.flush();
            pinned = Some((tree.snapshot(), model.clone()));
        }
    }

    // Drain the background debt (inline is already quiescent), then
    // verify the live tree and the pinned snapshot against their models.
    while tree.maintain(8) > 0 {}
    if let Some((snap, frozen)) = &pinned {
        for i in (0..key_space).step_by(((key_space / 97).max(1)) as usize) {
            let k = encode_key(i, scale.key_len);
            checks += 1;
            if snap.get(tree.storage().as_ref(), &k).as_ref() != frozen.get(&k) {
                mismatches += 1;
            }
        }
    }
    for (k, v) in &model {
        checks += 1;
        if tree.get(k).as_ref() != Some(v) {
            mismatches += 1;
        }
    }
    let scanned = tree.scan(&encode_key(0, scale.key_len), &[0xffu8; 1], usize::MAX);
    let expected: Vec<(Bytes, Bytes)> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    checks += 1;
    if scanned != expected {
        mismatches += 1;
    }

    latencies.sort_unstable();
    let p99 = crate::percentile_ns(&latencies, 0.99);
    let stats = tree.stats();
    let ok = mismatches == 0
        && (!background || (stats.bg_compactions > 0 && inline_p99.is_none_or(|ip| p99 <= ip)));
    CompactionRow {
        variant,
        ops,
        p50_ns: crate::percentile_ns(&latencies, 0.50),
        p99_ns: p99,
        max_ns: crate::max_ns(&latencies),
        flushes: stats.flushes,
        bg_compactions: stats.bg_compactions,
        stall_ns: stats.stall_ns,
        pending_compaction_bytes: stats.pending_compaction_bytes,
        equivalence_checks: checks,
        ok,
    }
}

/// Runs both variants and returns their rows — `"inline"` first,
/// `"background"` second, so the tail-latency win of moving structural
/// work off the hot path is `rows[0].p99_ns as f64 / rows[1].p99_ns as
/// f64`.
pub fn compaction(scale: &ExperimentScale) -> Vec<CompactionRow> {
    let inline = run_variant(scale, false, None);
    let background = run_variant(scale, true, Some(inline.p99_ns));
    vec![inline, background]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            load_entries: 1_500,
            ..ExperimentScale::tiny()
        }
    }

    #[test]
    fn background_beats_inline_tail_latency_and_stays_equivalent() {
        let _serial = crate::real_time_test_guard();
        let rows = compaction(&tiny());
        assert_eq!(rows[0].variant, "inline");
        assert_eq!(rows[1].variant, "background");
        for r in &rows {
            assert!(r.ok, "compaction invariants failed: {r:?}");
            assert!(r.equivalence_checks > 0);
        }
        assert!(rows[1].bg_compactions > 0, "background steps must run");
        assert!(
            rows[1].p99_ns <= rows[0].p99_ns,
            "deferred structural work must not worsen the op tail: {} vs {}",
            rows[1].p99_ns,
            rows[0].p99_ns
        );
    }
}
