//! Durability experiment (beyond the paper): the cost and correctness of
//! the WAL + cross-shard group-commit write path.
//!
//! `repro durability` runs the balanced mixed workload on a *durable*
//! [`ShardedRusKey`] at each shard count, measuring the WAL traffic the
//! missions generate (appends, fsyncs, acknowledged records, barrier
//! latency), then simulates a restart: the store is dropped and
//! [`ShardedRusKey::recover`] replays the per-shard logs. Every row
//! checks the group-commit invariants in-process and reports a single
//! `durability_ok` verdict so CI can grep for it:
//!
//! * at most one fsync per shard per mission (the group-commit bound);
//! * every logged record acknowledged at its mission's barrier
//!   (synced ≥ acknowledged);
//! * the overlapped barrier's latency (`commit_ns`, max over the shards'
//!   concurrent commit legs) never exceeds the sequential sum of the legs
//!   (`commit_busy_ns`) — both compositions are reported per row;
//! * recovery replays exactly the records the logs held at shutdown.

use ruskey::db::RusKeyConfig;
use ruskey::runner::ExperimentScale;
use ruskey::sharded::{DurabilityConfig, ShardedRusKey};
use ruskey::tuner::NoOpTuner;
use ruskey_workload::{bulk_load_pairs, OpGenerator, OpMix, Operation};

/// One shard count's durability measurement.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// Number of shards (= number of WAL files).
    pub shards: usize,
    /// Missions executed (= group-commit batches).
    pub missions: usize,
    /// Total operations executed.
    pub ops_total: u64,
    /// Write operations (puts + deletes) — each one acknowledged at its
    /// mission's commit barrier.
    pub acknowledged_ops: u64,
    /// WAL records appended across all shards.
    pub wal_appends: u64,
    /// WAL fsyncs issued across all shards (≤ shards × missions under
    /// group commit).
    pub wal_syncs: u64,
    /// WAL records covered by a successful fsync.
    pub synced_ops: u64,
    /// Mean group-commit batch size (records acknowledged per fsync).
    pub mean_batch: f64,
    /// Mean virtual barrier latency per mission (ns): the **overlapped**
    /// composition — per mission, the max over the shards' concurrent
    /// commit legs. The durability latency group commit adds to a batch.
    pub commit_ns_per_mission: f64,
    /// Mean total sync work per mission (ns): the sum over the shards'
    /// commit legs — what the barrier would cost if the fsyncs ran
    /// sequentially on the mission thread (the pre-pool behavior).
    pub commit_busy_ns_per_mission: f64,
    /// WAL records replayed by recovery after the simulated restart.
    pub recovered_records: u64,
    /// All durability invariants held (group-commit sync bound, full
    /// acknowledgement, exact replay).
    pub ok: bool,
}

/// Runs the durable write path at each shard count and verifies the
/// group-commit and recovery invariants.
pub fn durability(scale: &ExperimentScale, shard_counts: &[usize]) -> Vec<DurabilityRow> {
    shard_counts
        .iter()
        .map(|&n| {
            let dir = std::env::temp_dir().join(format!(
                "ruskey-durability-{}-{n}shards",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let durability = DurabilityConfig::group_commit(&dir);

            let mut db = ShardedRusKey::try_with_tuner_durable(
                RusKeyConfig::scaled_default(),
                n,
                scale.disk(),
                Box::new(NoOpTuner),
                &durability,
            )
            .expect("open durable store");
            db.bulk_load(bulk_load_pairs(
                scale.load_entries,
                scale.key_len,
                scale.value_len,
                scale.seed,
            ));
            let spec = scale.spec().with_mix(OpMix::balanced());
            let mut g = OpGenerator::new(spec, scale.seed.wrapping_add(1));

            let mut ok = true;
            let mut ops_total = 0u64;
            let mut acknowledged = 0u64;
            let mut appends = 0u64;
            let mut syncs = 0u64;
            let mut synced = 0u64;
            let mut commit_ns = 0u64;
            let mut commit_busy_ns = 0u64;
            for _ in 0..scale.missions {
                let ops: Vec<Operation> = g.take_ops(scale.mission_size);
                let r = db.run_mission(&ops);
                ops_total += r.ops;
                acknowledged += r.updates;
                appends += r.wal_appends;
                syncs += r.wal_syncs;
                synced += r.wal_synced;
                commit_ns += r.commit_ns;
                commit_busy_ns += r.commit_busy_ns;
                // Group commit: ≤ 1 fsync per shard per batch, every
                // logged record acknowledged at the barrier.
                ok &= r.wal_syncs <= n as u64;
                ok &= r.wal_appends == r.updates;
                ok &= r.wal_synced == r.wal_appends;
                // Overlapped barrier: the latency (max over legs) must
                // stay within the sequential sum of the legs. This is a
                // model-consistency guard on the two reported
                // compositions, not a proof the legs ran concurrently —
                // actual concurrency is pinned by `tests/pool_stress.rs`
                // (distinct worker threads) and the mid-barrier crash
                // case in `tests/crash_recovery.rs` (siblings commit
                // while one shard dies, which a sequential
                // stop-at-first-crash barrier cannot do).
                ok &= r.commit_ns <= r.commit_busy_ns;
            }
            ok &= synced >= acknowledged;

            // Simulated restart: the logs must replay exactly what they
            // held at shutdown (everything was synced at the last
            // barrier, so the drop loses nothing).
            let expected_records: u64 = (0..n)
                .map(|i| db.shard(i).wal().map_or(0, |w| w.records()))
                .sum();
            drop(db);
            let recovered = ShardedRusKey::recover(
                RusKeyConfig::scaled_default(),
                n,
                scale.disk(),
                Box::new(NoOpTuner),
                &durability,
            )
            .expect("recover durable store");
            let recovered_records: u64 = (0..n)
                .map(|i| recovered.shard(i).wal().map_or(0, |w| w.records()))
                .sum();
            ok &= recovered_records == expected_records;
            let _ = std::fs::remove_dir_all(&dir);

            DurabilityRow {
                shards: n,
                missions: scale.missions,
                ops_total,
                acknowledged_ops: acknowledged,
                wal_appends: appends,
                wal_syncs: syncs,
                synced_ops: synced,
                mean_batch: appends as f64 / (syncs.max(1)) as f64,
                commit_ns_per_mission: commit_ns as f64 / (scale.missions.max(1)) as f64,
                commit_busy_ns_per_mission: commit_busy_ns as f64 / (scale.missions.max(1)) as f64,
                recovered_records,
                ok,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_rows_hold_group_commit_invariants() {
        let _serial = crate::real_time_test_guard();
        let scale = ExperimentScale {
            load_entries: 1200,
            mission_size: 120,
            missions: 5,
            ..ExperimentScale::tiny()
        };
        let rows = durability(&scale, &[1, 2]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ok, "durability invariants failed at {} shards", r.shards);
            assert!(r.synced_ops >= r.acknowledged_ops);
            assert!(r.wal_syncs <= (r.shards * r.missions) as u64);
            assert!(r.mean_batch >= 1.0, "group commit must batch records");
            assert!(
                r.commit_ns_per_mission <= r.commit_busy_ns_per_mission + 1e-9,
                "overlapped barrier latency must not exceed the sequential sum"
            );
        }
        // Same workload at every shard count: identical durability traffic.
        assert_eq!(rows[0].acknowledged_ops, rows[1].acknowledged_ops);
        assert_eq!(rows[0].wal_appends, rows[1].wal_appends);
    }
}
