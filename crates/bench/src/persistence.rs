//! Full-store persistence experiment (beyond the paper): restart
//! equivalence of the manifest + `FileDisk` recovery path.
//!
//! `repro persistence` runs the balanced mixed workload on a **fully
//! persistent** [`ShardedRusKey`] at each shard count — every shard on its
//! own `FileDisk` directory with a manifest for the run/level structure
//! and a WAL for the write buffer — then simulates a restart: the store is
//! dropped (losing every in-memory structure) and
//! [`ShardedRusKey::recover_persistent`] rebuilds it from the three
//! on-disk artifacts. Each row verifies in-process that the recovered
//! store is **get/scan-identical** to the store that was dropped (flushed
//! runs included, not just the WAL tail), that recovery actually rebuilt
//! runs from data pages, and that the recovered store keeps serving
//! missions; the per-row verdicts conjoin into a single `persistence_ok`
//! flag CI greps from the JSON output.
//!
//! Each row then goes one failure mode deeper: a **simulated power cut**
//! ([`PowerCutPoint::ExtentUnsynced`]) fires at shard 0's extent-fsync
//! barrier mid-flush, tearing the un-synced extent file and halting the
//! device. The subsequent recovery must restore exactly the acknowledged
//! state, sweep the torn orphan extent, and keep serving — the per-row
//! `power_ok` verdicts conjoin into the `power_failure_ok` flag CI greps
//! alongside `persistence_ok`.

use bytes::Bytes;

use ruskey::db::RusKeyConfig;
use ruskey::runner::ExperimentScale;
use ruskey::sharded::{PersistenceConfig, ShardedRusKey};
use ruskey::tuner::NoOpTuner;
use ruskey_storage::PowerCutPoint;
use ruskey_workload::{bulk_load_pairs, encode_key, OpGenerator, OpMix, Operation};

/// One shard count's persistence measurement.
#[derive(Debug, Clone)]
pub struct PersistenceRow {
    /// Number of shards (= number of FileDisk directories + manifests).
    pub shards: usize,
    /// Missions executed before the simulated restart.
    pub missions: usize,
    /// Total operations executed before the restart.
    pub ops_total: u64,
    /// Memtable flushes before the restart (each one moved runs to disk
    /// and committed manifest edits).
    pub flushes: u64,
    /// Lifetime manifest edits across all shards after recovery
    /// (replayed + committed).
    pub manifest_edits: u64,
    /// Runs rebuilt from manifest + data pages by the recovery.
    pub runs_recovered: u64,
    /// WAL records replayed on top of the recovered structure.
    pub replayed_tail: u64,
    /// Point lookups compared bit-for-bit between the dropped store and
    /// its recovery.
    pub checked_keys: u64,
    /// Restart equivalence held: every compared get and the full scan
    /// were identical, runs were actually rebuilt, and the recovered
    /// store served a post-restart mission.
    pub ok: bool,
    /// Extent-file fsyncs issued by the run (power-failure contract,
    /// step 1) — proof the durability barriers were exercised.
    pub extent_syncs: u64,
    /// Directory-handle fsyncs issued by the run (contract step 2).
    pub dir_syncs: u64,
    /// Orphaned extent files the post-power-cut recovery swept.
    pub orphans_collected: u64,
    /// The power-cut leg held: the cut fired and crashed the store, the
    /// second recovery restored exactly the acknowledged state, swept the
    /// torn orphan, and served a further mission.
    pub power_ok: bool,
}

/// The store configuration of the experiment: the scaled defaults with a
/// small write buffer, so every shard flushes runs to disk even at tiny
/// scale and high shard counts (per-shard write traffic shrinks with
/// `N`) — a restart that only replays the WAL tail would be
/// indistinguishable from full persistence otherwise.
fn store_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 8 * 1024;
    cfg
}

/// Runs the persistent store at each shard count, restarts it, and
/// verifies restart equivalence.
pub fn persistence(scale: &ExperimentScale, shard_counts: &[usize]) -> Vec<PersistenceRow> {
    shard_counts
        .iter()
        .map(|&n| {
            let root = std::env::temp_dir().join(format!(
                "ruskey-persistence-{}-{n}shards",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            let mut pcfg = PersistenceConfig::new(&root);
            pcfg.page_size = scale.page_size;
            pcfg.cost = scale.cost;

            let mut db = ShardedRusKey::try_with_tuner_persistent(
                store_cfg(),
                n,
                Box::new(NoOpTuner),
                &pcfg,
            )
            .expect("open persistent store");
            db.bulk_load(bulk_load_pairs(
                scale.load_entries,
                scale.key_len,
                scale.value_len,
                scale.seed,
            ));
            let spec = scale.spec().with_mix(OpMix::balanced());
            let mut g = OpGenerator::new(spec, scale.seed.wrapping_add(1));
            let mut ops_total = 0u64;
            for _ in 0..scale.missions {
                let ops: Vec<Operation> = g.take_ops(scale.mission_size);
                ops_total += db.run_mission(&ops).ops;
            }
            let flushes = db.stats().flushes;

            // Reference answers from the live store: every key of the
            // space (at tiny scale) or a stride sample, plus one scan.
            let stride = (scale.load_entries / 2_000).max(1);
            let sample: Vec<Bytes> = (0..scale.load_entries)
                .step_by(stride as usize)
                .map(|i| encode_key(i, scale.key_len))
                .collect();
            let expected_gets: Vec<Option<Bytes>> = sample.iter().map(|k| db.get(k)).collect();
            let lo = encode_key(0, scale.key_len);
            let hi = encode_key(scale.load_entries, scale.key_len);
            let expected_scan = db.scan(&lo, &hi, 500);
            drop(db); // restart: every in-memory structure dies

            let mut rec =
                ShardedRusKey::recover_persistent(store_cfg(), n, Box::new(NoOpTuner), &pcfg)
                    .expect("recover persistent store");
            let stats = rec.stats();
            let mut ok = true;
            for (k, want) in sample.iter().zip(&expected_gets) {
                ok &= &rec.get(k) == want;
            }
            ok &= rec.scan(&lo, &hi, 500) == expected_scan;
            // Flushes happened, so recovery must have rebuilt real runs
            // (this is what distinguishes full-store persistence from the
            // WAL-only recovery of earlier revisions).
            ok &= flushes > 0 && stats.runs_recovered > 0;
            ok &= stats.manifest_edits > 0;
            // The recovered store keeps serving missions. The ad-hoc
            // reference gets/scans above fold into this report's delta
            // (as they always have), so the op count is a lower bound.
            let post = rec.run_mission(&g.take_ops(scale.mission_size));
            ok &= post.ops >= scale.mission_size as u64;

            // Power-cut leg: overwrite a marked, acknowledged batch, then
            // cut the power at shard 0's extent-fsync barrier mid-flush —
            // the extent tears, the device halts, the manifest commit and
            // WAL truncation never happen.
            let marked = Bytes::from(vec![0xAB; scale.value_len.max(1)]);
            for i in (0..scale.load_entries).step_by(stride as usize).take(64) {
                rec.put(encode_key(i, scale.key_len), marked.clone());
            }
            rec.group_commit();
            let expected_power_gets: Vec<Option<Bytes>> =
                sample.iter().map(|k| rec.get(k)).collect();
            rec.shard(0)
                .storage()
                .arm_power_cut(PowerCutPoint::ExtentUnsynced, 0);
            rec.shard_mut(0).flush();
            let cut_fired = rec.shard(0).power_failed();
            let pre_cut = rec.stats();
            drop(rec); // power loss

            let mut rec2 =
                ShardedRusKey::recover_persistent(store_cfg(), n, Box::new(NoOpTuner), &pcfg)
                    .expect("recover after power cut");
            let power_stats = rec2.stats();
            let mut power_ok = cut_fired;
            // The acknowledged state — marked batch included — survives
            // the cut bit-for-bit, and the torn extent is swept.
            for (k, want) in sample.iter().zip(&expected_power_gets) {
                power_ok &= &rec2.get(k) == want;
            }
            power_ok &= power_stats.orphans_collected >= 1;
            power_ok &= pre_cut.extent_syncs > 0 && pre_cut.dir_syncs > 0;
            let post2 = rec2.run_mission(&g.take_ops(scale.mission_size));
            power_ok &= post2.ops >= scale.mission_size as u64;
            let _ = std::fs::remove_dir_all(&root);

            PersistenceRow {
                shards: n,
                missions: scale.missions,
                ops_total,
                flushes,
                manifest_edits: stats.manifest_edits,
                runs_recovered: stats.runs_recovered,
                replayed_tail: stats.replayed_tail,
                checked_keys: sample.len() as u64,
                ok,
                extent_syncs: pre_cut.extent_syncs,
                dir_syncs: pre_cut.dir_syncs,
                orphans_collected: power_stats.orphans_collected,
                power_ok,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_rows_hold_restart_equivalence() {
        let _serial = crate::real_time_test_guard();
        let scale = ExperimentScale {
            load_entries: 1000,
            mission_size: 100,
            missions: 8,
            page_size: 512,
            ..ExperimentScale::tiny()
        };
        let rows = persistence(&scale, &[1, 2]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ok, "restart equivalence failed at {} shards", r.shards);
            assert!(r.flushes > 0, "the scenario must move runs to disk");
            assert!(r.runs_recovered > 0);
            assert!(r.manifest_edits > 0);
            assert!(r.checked_keys > 0);
            assert!(r.power_ok, "power-cut leg failed at {} shards", r.shards);
            assert!(r.extent_syncs > 0, "extent-fsync barrier never exercised");
            assert!(r.dir_syncs > 0, "dir-fsync barrier never exercised");
            assert!(r.orphans_collected >= 1, "the torn extent must be swept");
        }
    }
}
