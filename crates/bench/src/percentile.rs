//! Guarded latency-summary helpers shared by the experiments.
//!
//! The bench crate grew several hand-rolled percentile/tail snippets
//! that index `latencies[..]` unguarded — an empty latency vector
//! (zero ops, or a mix that never exercises the measured path) panics
//! the whole experiment instead of yielding a row. These helpers are
//! the one shared, empty-safe implementation.

/// Nearest-rank percentile (truncating, matching the historical bench
/// behavior) of an already **sorted** slice; `0` on empty input instead
/// of a panic. `p` is a fraction in `[0, 1]` — `percentile_ns(&l, 0.99)`
/// is p99, `1.0` the maximum.
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Maximum of an already sorted slice; `0` on empty input.
pub fn max_ns(sorted: &[u64]) -> u64 {
    sorted.last().copied().unwrap_or(0)
}

/// Mean of the last `fraction` of `values` (the converged tail of a
/// mission series); falls back to the full mean when the tail window
/// rounds to zero, and `0.0` on empty input.
pub fn tail_mean(values: &[f64], fraction: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let window = ((values.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
    let tail = &values[values.len() - window.clamp(1, values.len())..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_match_nearest_rank_truncating() {
        let l: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&l, 0.0), 1);
        assert_eq!(percentile_ns(&l, 0.5), 50); // (99 * 0.5) as usize = 49
        assert_eq!(percentile_ns(&l, 0.99), 99);
        assert_eq!(percentile_ns(&l, 1.0), 100);
        assert_eq!(max_ns(&l), 100);
    }

    #[test]
    fn empty_inputs_yield_zero_not_a_panic() {
        assert_eq!(percentile_ns(&[], 0.99), 0);
        assert_eq!(max_ns(&[]), 0);
        assert_eq!(tail_mean(&[], 0.3), 0.0);
    }

    #[test]
    fn single_element_is_every_percentile() {
        assert_eq!(percentile_ns(&[42], 0.0), 42);
        assert_eq!(percentile_ns(&[42], 0.999), 42);
        assert_eq!(tail_mean(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn tail_mean_takes_the_last_fraction() {
        let v = [10.0, 10.0, 10.0, 1.0, 2.0, 3.0];
        // Last third = [2.0, 3.0] -> 2.5.
        assert!((tail_mean(&v, 1.0 / 3.0) - 2.5).abs() < 1e-12);
        // A fraction that rounds to zero still averages something.
        assert!((tail_mean(&v, 0.01) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_fractions_are_clamped() {
        let l = [1u64, 2, 3];
        assert_eq!(percentile_ns(&l, -0.5), 1);
        assert_eq!(percentile_ns(&l, 1.5), 3);
    }
}
