//! Root meta-crate of the RusKey reproduction workspace.
//!
//! Re-exports every workspace crate so the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` can use
//! one dependency. Library users should depend on the individual crates
//! (most importantly [`ruskey`]) directly.
//!
//! # The sharded engine core
//!
//! The store's engine is sharded for multi-core scaling:
//! [`ruskey::sharded::ShardedRusKey`] hash-partitions keys onto `N`
//! independent FLSM-trees ([`lsm`]) that share one storage device
//! ([`storage`], whose accounting is atomic and `Sync`). Missions execute
//! in parallel on a **persistent worker pool**: one long-lived OS thread
//! per shard, spawned when the store is constructed and reused for every
//! mission (spawn cost is amortized across the store's lifetime, not paid
//! per mission), with operations routed by the stable FNV-1a hash in
//! [`workload::routing`]; cross-shard range scans are k-way merged.
//! Trees move between the store and the workers over channels — exactly
//! one side owns a shard's tree at any instant, so the hot path carries
//! no locks — and `N = 1` runs through the same pool path as any other
//! shard count. A panicking worker surfaces as a clean
//! [`ruskey::sharded::MissionError`] (never a hang); dropping the store
//! joins every worker. Each shard accounts on its own **time domain** (a
//! [`storage::ShardStorage`] view with a private virtual clock), so
//! per-shard and per-level time attribution is exact under parallelism;
//! domains compose store-wide into mission wall time (max) and
//! device-busy time (sum). A single global tuner ([`ruskey::lerp`] or a
//! baseline) observes the shard-merged statistics and fans its per-level
//! policy changes out to every shard, so the paper's tuning loop is
//! unchanged. [`ruskey::db::RusKey`] remains the single-tree `N = 1` case
//! used by all paper experiments; `tests/sharded_equivalence.rs` asserts
//! the two are observationally equivalent, `tests/time_domains.rs`
//! asserts per-shard accounting exactness at `N ∈ {2, 4}`, and
//! `tests/pool_stress.rs` pins pool reuse (stable worker threads across
//! missions), single-threaded-replay determinism, and clean panic
//! propagation.
//!
//! # Durability & recovery
//!
//! The write path is durable: each shard owns a write-ahead log
//! ([`lsm::Wal`]) to which every put/delete is appended *before* the
//! memtable insert, truncated whenever a memtable flush supersedes it.
//! Per-record fsyncs would dominate write cost, so the sharded store
//! instead runs a **cross-shard group commit**: every mission ends with a
//! commit barrier that fsyncs each shard's log at most once, and the
//! per-shard legs run *concurrently* on the persistent shard workers
//! (each worker commits as soon as its lane finishes), so the barrier
//! costs the slowest shard's fsync — not the sum of all shards' — and a
//! shard crashing mid-leg cannot stop its siblings' batches from
//! committing. The durability traffic and its cost are first-class
//! metrics — WAL appends, fsyncs, acknowledged records, and both barrier
//! compositions ([`ruskey::stats::MissionReport::commit_ns`], the
//! overlapped max, vs [`ruskey::stats::MissionReport::commit_busy_ns`],
//! the sequential sum) flow through [`lsm::TreeStatsSnapshot`] into
//! [`ruskey::stats::MissionReport`] (and the `repro durability` JSON),
//! and WAL I/O is charged to the owning shard's time domain via the
//! [`storage::CostModel`] WAL constants.
//!
//! The recovery contract: after a crash,
//! [`ruskey::sharded::ShardedRusKey::recover`] (or
//! [`lsm::FlsmTree::recover`] for one tree) replays each shard's log —
//! the longest valid prefix, tolerating torn tails and corruption, with
//! replay order pinned by the record sequence numbers — rebuilding
//! exactly the acknowledged write-buffer state. Runs already flushed to
//! [`storage::Storage`] are the backend's durability concern (the
//! simulated disk is deliberately volatile). `tests/crash_recovery.rs`
//! pins the contract with a [`lsm::CrashPoint`] fault-injection harness
//! (pre-append, post-append, post-sync, and torn mid-flush crashes at
//! `N ∈ {1, 2, 4}`), a recovered-store-equals-durable-prefix proptest,
//! and a WAL replay fuzz test.

pub use ruskey;
pub use ruskey_analysis as analysis;
pub use ruskey_lsm as lsm;
pub use ruskey_rl as rl;
pub use ruskey_storage as storage;
pub use ruskey_workload as workload;
