//! Root meta-crate of the RusKey reproduction workspace.
//!
//! Re-exports every workspace crate so the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` can use
//! one dependency. Library users should depend on the individual crates
//! (most importantly [`ruskey`]) directly.

pub use ruskey;
pub use ruskey_analysis as analysis;
pub use ruskey_lsm as lsm;
pub use ruskey_rl as rl;
pub use ruskey_storage as storage;
pub use ruskey_workload as workload;
