//! Root meta-crate of the RusKey reproduction workspace.
//!
//! Re-exports every workspace crate so the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` can use
//! one dependency. Library users should depend on the individual crates
//! (most importantly [`ruskey`]) directly.
//!
//! # The sharded engine core
//!
//! The store's engine is sharded for multi-core scaling:
//! [`ruskey::sharded::ShardedRusKey`] hash-partitions keys onto `N`
//! independent FLSM-trees ([`lsm`]) that share one storage device
//! ([`storage`], whose accounting is atomic and `Sync`). Missions execute
//! in parallel on a **persistent worker pool**: one long-lived OS thread
//! per shard, spawned when the store is constructed and reused for every
//! mission (spawn cost is amortized across the store's lifetime, not paid
//! per mission), with operations routed by the stable FNV-1a hash in
//! [`workload::routing`]; cross-shard range scans are k-way merged.
//! Trees move between the store and the workers over channels — exactly
//! one side owns a shard's tree at any instant, so the hot path carries
//! no locks — and `N = 1` runs through the same pool path as any other
//! shard count. A panicking worker surfaces as a clean
//! [`ruskey::sharded::MissionError`] (never a hang); dropping the store
//! joins every worker. Each shard accounts on its own **time domain** (a
//! [`storage::ShardStorage`] view with a private virtual clock), so
//! per-shard and per-level time attribution is exact under parallelism;
//! domains compose store-wide into mission wall time (max) and
//! device-busy time (sum). Tuning follows a
//! [`ruskey::sharded::TunerStrategy`]: `Global` keeps the paper's loop —
//! one agent ([`ruskey::lerp`] or a baseline) observes the shard-merged
//! statistics and fans its per-level policy changes out to every shard —
//! while `PerShard` gives every shard its own agent fed by that shard's
//! exact signal (see the tuning section below).
//! [`ruskey::db::RusKey`] remains the single-tree `N = 1` case
//! used by all paper experiments; `tests/sharded_equivalence.rs` asserts
//! the two are observationally equivalent, `tests/time_domains.rs`
//! asserts per-shard accounting exactness at `N ∈ {2, 4}`, and
//! `tests/pool_stress.rs` pins pool reuse (stable worker threads across
//! missions), single-threaded-replay determinism, and clean panic
//! propagation.
//!
//! # Durability & recovery: the two-log contract
//!
//! The store's durability splits across **two logs with disjoint
//! responsibilities**:
//!
//! * the **WAL** ([`lsm::Wal`]) protects the *write buffer*: each shard
//!   appends every put/delete *before* the memtable insert and truncates
//!   the log whenever a flush supersedes it. Per-record fsyncs would
//!   dominate write cost, so the sharded store runs a **cross-shard group
//!   commit**: every mission ends with a commit barrier that fsyncs each
//!   shard's log at most once, with the per-shard legs running
//!   *concurrently* on the persistent shard workers — the barrier costs
//!   the slowest shard's fsync, not the sum, and a shard crashing mid-leg
//!   cannot stop its siblings' batches from committing;
//! * the **manifest** ([`lsm::Manifest`]) protects the *tree structure*:
//!   every structural edit — a run created at some level with its page
//!   extent and fence/Bloom metadata, a run deleted by compaction, a
//!   policy transition, the flush sequence watermark — is committed as
//!   one atomic, CRC-framed batch per mutation, with the log itself
//!   compacted by atomic checkpoints.
//!
//! Ordering makes the two logs compose, and on a real filesystem the
//! ordering is enforced **to power-failure grade** by a three-step
//! contract per structural mutation:
//!
//! 1. **data durable** — the pages of every run the mutation created are
//!    written and the extent file is `fsync`ed
//!    ([`storage::Storage::sync_extent`]);
//! 2. **names durable** — one directory-handle `fsync`
//!    ([`storage::Storage::sync_dir`]) makes the extent files' directory
//!    entries (and the manifest checkpoint's `rename`) survive power
//!    loss;
//! 3. **structure durable** — only then does the manifest batch commit,
//!    and only after *that* does the WAL truncate (obsolete pages are
//!    freed only after the commit).
//!
//! A power cut between any two steps loses nothing acknowledged: the
//! commit is aborted, the WAL keeps its records, and recovery rolls the
//! structure back to the previous commit while the log replays the rest.
//! The extent files a pre-commit cut strands on disk are swept by
//! recovery ([`storage::Storage::collect_orphans`], counted as
//! [`lsm::TreeStatsSnapshot::orphans_collected`]), and recovery reads go
//! through the fallible [`storage::Storage::try_read_page`] — a missing,
//! torn, or corrupt extent surfaces as a typed error naming the run, not
//! a panic. So at every crash point either the manifest or the WAL still
//! covers each acknowledged write, and the manifest never references
//! pages that were not durably written.
//!
//! On a **persistent backend**
//! ([`ruskey::sharded::ShardedRusKey::try_with_tuner_persistent`] gives
//! every shard its own [`storage::FileDisk`] directory — independent
//! file handles, no cross-shard serialization — plus a manifest and a
//! WAL), the store is fully restartable:
//! [`ruskey::sharded::ShardedRusKey::recover_persistent`] (or
//! [`lsm::FlsmTree::recover_persistent`] for one tree) folds each
//! manifest's longest consistent prefix, rebuilds every recorded run
//! from its data pages (fence pointers and Bloom filters re-derived
//! identically), and replays the WAL tail on top — get/scan-identical to
//! the store that was dropped. On the volatile simulated disk the WAL
//! alone still protects the write buffer
//! ([`ruskey::sharded::ShardedRusKey::recover`], longest valid prefix,
//! replay order pinned by record sequence numbers).
//!
//! Durability traffic and recovery work are first-class metrics: WAL
//! appends/fsyncs/acknowledged records, both barrier compositions
//! ([`ruskey::stats::MissionReport::commit_ns`], the overlapped max, vs
//! [`ruskey::stats::MissionReport::commit_busy_ns`], the sequential
//! sum), and the recovery counters
//! ([`ruskey::stats::MissionReport::manifest_edits`],
//! [`ruskey::stats::MissionReport::runs_recovered`],
//! [`ruskey::stats::MissionReport::replayed_tail`]) flow through
//! [`lsm::TreeStatsSnapshot`] into [`ruskey::stats::MissionReport`] and
//! the `repro durability` / `repro persistence` JSON.
//!
//! The contract is pinned four ways: `tests/crash_recovery.rs` runs a
//! [`lsm::CrashPoint`] fault-injection matrix over the WAL write path
//! (`N ∈ {1, 2, 4}`), a [`lsm::ManifestCrashPoint`] matrix over the
//! manifest (crash before/inside/after a commit, mid-checkpoint, and the
//! un-fsynced checkpoint rename), and a [`storage::PowerCutPoint`]
//! torn-power matrix over the fsync barriers themselves (torn extent
//! file, unlinked directory entry — recovery must restore exactly the
//! acknowledged prefix and sweep the orphans);
//! `tests/persistence_restart.rs` asserts restart equivalence at
//! `N ∈ {1, 2, 4}` with a random-schedule proptest and a manifest replay
//! fuzz test; and `repro persistence --json` reports `persistence_ok`
//! and `power_failure_ok` verdicts CI greps.
//!
//! # The read path: serving-grade raw speed
//!
//! Point lookups are engineered to cost as little *real* time as the
//! layout allows, in three layers that compose:
//!
//! * **O(1) out-of-range rejection** — every level maintains the
//!   aggregate `[min, max]` key bounds of its runs (and the tree the
//!   union across levels), refreshed incrementally on flush, compaction,
//!   policy transition, and recovery. A get outside the tree bounds
//!   returns in constant time — zero Bloom probes, zero fence-pointer
//!   searches, zero page reads — and a get outside one level's bounds
//!   skips that whole level ([`lsm::FlsmTree::key_bounds`]).
//! * **a sharded, serving-grade block cache** —
//!   [`storage::BlockCache`] keys pages by `(extent, page)` across K
//!   independently locked LRU segments (FNV-1a segment selection, true
//!   O(1) insert/touch/evict on an intrusive slab list). A hit costs a
//!   memcpy and charges only the CPU probe cost to the virtual clock —
//!   the cost model's accounting stays exact, so cache-disabled runs
//!   remain bit-identical to the simulated device. Invalidation follows
//!   the two-log contract: [`storage::Storage::free`] purges the
//!   extent's pages *before* the id can be reused, so recovery and
//!   compaction can never serve a stale page
//!   (`tests/cache_equivalence.rs` pins cached ≡ uncached at
//!   `N ∈ {1, 2, 4}` through flushes, compaction, and restart).
//! * **zero-alloc positional file I/O** — [`storage::FileDisk`] caches
//!   one file handle per extent (open once, `pread`/`pwrite` thereafter,
//!   no seek state and no per-read `open`) and stages pages through a
//!   reusable thread-local buffer; `fds_opened` / `buffer_grows`
//!   counters prove both properties at steady state.
//!
//! Cache traffic is observable end to end: hit/miss/eviction counters
//! flow from [`storage::StorageMetrics`] through
//! [`lsm::TreeStatsSnapshot`] into
//! [`ruskey::stats::MissionReport::cache_hits`] (and
//! `cache_hit_ratio()`), the file-backed `repro shard_scaling` rows
//! (which also carry measured `real_get_ns_per_op`), and the dedicated
//! `repro read_path --json` experiment, whose `read_path_ok` verdict CI
//! greps: cached hot lookups must beat the uncached baseline, missing
//! keys must cost less than hot hits (the bound fast path), and the
//! steady state must be alloc-free. Each persistent shard serves
//! through its own cache, sized by
//! [`ruskey::sharded::PersistenceConfig`]'s `cache_pages` (0 disables
//! caching entirely).
//!
//! # Background maintenance: structural work off the hot path
//!
//! With [`lsm::LsmConfig`]'s `background_maintenance` enabled, flushes
//! and compactions leave the write path: `put`/`delete` only append to
//! the WAL and the memtable, and the structural work runs as **bounded,
//! explicit steps** ([`lsm::FlsmTree::step_maintenance`] /
//! [`lsm::FlsmTree::maintain`]) that each shard worker interleaves at
//! mission boundaries. The pieces compose as follows:
//!
//! * **Shared run handles** — every on-disk run is an immutable
//!   `Arc<Run>`. [`lsm::FlsmTree::snapshot`] clones the current run-set
//!   in O(levels) into a [`lsm::TreeSnapshot`], a read view that keeps
//!   serving the pinned state (and scans pin their source runs the same
//!   way) while merges replace the structure underneath.
//! * **Score-based picker** — [`lsm::picker::CompactionPicker`] scores
//!   every level (bytes over capacity, L0 additionally by run count,
//!   scaled by [`lsm::picker::SCORE_SCALE`]) and picks the highest
//!   scorer's sealed runs. A level holding a *single* sealed run that
//!   overlaps nothing at the next level moves down as a zero-I/O
//!   **trivial move** (a `MoveRun` manifest edit), bounded by the
//!   grandparent-overlap limit so moves cannot pile up unmergeable debt.
//! * **Two-step merges** — one maintenance step *builds* the
//!   replacement batch from the picked runs (the inputs stay live for
//!   readers throughout); a later step revalidates and *applies* it:
//!   remove inputs, admit the merged run below, commit the manifest
//!   batch. A crash between the steps loses nothing — the inputs are
//!   still the manifest's truth.
//! * **Deferred frees extend the two-log contract** — a superseded
//!   run's extent and cache pages are freed only after (a) the manifest
//!   commit that removed it is durable *and* (b) the last snapshot or
//!   scan pinning it drops (`Arc` strong count). Until both hold, the
//!   run sits in a retired list; [`storage::Storage::free`] then purges
//!   its cache pages before the extent id can be reused, so neither a
//!   concurrent reader nor recovery can ever observe a recycled page.
//! * **Backpressure** — the write path stalls (running maintenance
//!   steps inline) only when L0's run count exceeds
//!   [`lsm::LsmConfig`]'s `l0_stall_runs`; the time spent is *measured*,
//!   never charged, and reported as
//!   [`ruskey::stats::MissionReport::stall_ns`], alongside
//!   `bg_compactions` (steps applied) and `pending_compaction_bytes`
//!   (structural debt still owed).
//!
//! The contract is pinned by `tests/background_maintenance.rs` (a
//! proptest that the background store is bit-identical to a quiescent
//! inline store at `N ∈ {1, 2, 4}`, including reads racing an in-flight
//! merge, plus snapshot-pinning tests), the `manifest_crash_points_with_
//! a_background_merge_in_flight` matrix in `tests/crash_recovery.rs`,
//! and the `repro compaction --json` experiment, whose `compaction_ok`
//! verdict CI greps: background p99 op latency must not exceed inline
//! p99 on a write-heavy mix, with zero read divergence.
//!
//! # Serving: many concurrent clients, one engine
//!
//! [`ruskey::frontend::ServingFrontend`]
//! ([`ShardedRusKey::serve`](ruskey::sharded::ShardedRusKey::serve))
//! turns the store into a `Send + Sync` service handle: any number of
//! [`ruskey::frontend::ServingClient`]s submit get/put/delete/scan
//! concurrently through **bounded per-shard MPSC queues**, and each
//! shard's persistent worker drains its queue in batches — reads reply
//! immediately (per-shard FIFO makes read-your-writes structural),
//! writes in a batch share **one** WAL commit leg, and bounded
//! maintenance steps interleave between batches exactly as on the
//! mission path. The batch commit is the cross-*client* group commit:
//! requests arriving while a commit leg runs form the next batch, so
//! under concurrency the fsync amortizes over clients (mean writes per
//! commit > 1 at clients ≫ shards, pinned by `repro serve`).
//! Overload is handled at admission, not by unbounded queues: a token
//! bucket ([`ruskey::frontend::ServingConfig`]) rejects with a
//! `retry_after` hint (a rejected op is never executed), and a full
//! queue blocks the submitter with the wait recorded as `stall_ns`.
//! Live counters, queue-depth gauges, and power-of-two histograms are
//! snapshotted wait-free and render in the Prometheus text format
//! ([`ruskey::frontend::MetricsSnapshot::render_prometheus`]).
//!
//! Ad-hoc operations on the store itself (`get`/`put`/`delete`/`scan`
//! outside missions and serving sessions) route through the same shard
//! workers, so they share the mission path's time-domain attribution
//! and — the backpressure contract — interleave bounded maintenance on
//! write boundaries; an ad-hoc write burst in background mode keeps L0
//! bounded by `l0_stall_runs` and records its waits as `stall_ns`
//! (`tests/background_maintenance.rs`), and ad-hoc scans fan out on the
//! workers with exact per-shard accounting (`tests/time_domains.rs`).
//!
//! The serving contract is pinned by `tests/serving.rs` — K-client
//! equivalence to a single-threaded replay at `N ∈ {1, 2, 4}`,
//! read-your-writes under concurrency, a mid-serve [`lsm::CrashPoint`]
//! crash losing no acknowledged write, and a proptest that admission
//! rejections never drop an acknowledged op — and by the closed-loop
//! multi-client driver `repro serve --json` (YCSB-style mixed workload,
//! p50/p99/p999 and throughput per row), whose `serve_ok` verdict CI
//! greps: zero divergence from the shadow model, writes-per-commit
//! coalescing above 1 at clients ≫ shards, crash durability, and
//! admission accounting must all hold.
//!
//! # Per-shard learned tuning & hot-shard balance
//!
//! Under skewed key popularity the shards see *different* workloads, so
//! one store-wide policy is the wrong answer for somebody.
//! [`ruskey::sharded::TunerStrategy::PerShard`]
//! ([`ShardedRusKey::with_per_shard_lerp`](ruskey::sharded::ShardedRusKey::with_per_shard_lerp))
//! runs one Lerp agent per shard, and the signal path is exact rather
//! than averaged: each agent is rewarded from its shard's **reward
//! slice** — the shard's own time-domain delta with its own commit leg,
//! split out by the stats collector instead of merged — observes its
//! own [`ruskey::tuner::TreeObservation`], and lands policy changes
//! only on the owning shard ([`ruskey::sharded::ShardedRusKey::shard_policies`]
//! and [`ruskey::stats::MissionReport::shard_policies_after`] expose the
//! per-shard result). Idle shards are skipped — a zero-op slice carries
//! no signal, and skipping keeps a cold shard's replay buffer clean
//! under skew. At `N = 1` the per-shard strategy is **bit-identical**
//! to the global one (same seed, same slice, same observation), so it
//! is a strict generalization of the paper's loop, not a second code
//! path.
//!
//! Skew is also attacked structurally: hot-shard **mitigation**
//! ([`ruskey::sharded::ShardedRusKey::enable_balancing`]) feeds the
//! routed point-op stream into a Misra-Gries heavy-hitter sketch
//! ([`workload::routing::LoadSketch`]), and a mission whose recent load
//! imbalance crosses the configured threshold re-homes the hottest
//! shard's heaviest keys to the coldest shard through a
//! [`workload::routing::RoutingTable`] of per-key overrides consulted
//! by every path (missions, ad-hoc ops, and the serving frontend, whose
//! per-shard `shard_ops` counters and
//! [`ruskey::frontend::MetricsSnapshot::shard_imbalance`] surface the
//! skew live). On a durable store migration is crash-safe by ordering:
//! the override — including the shard it was moved *from* — is
//! persisted atomically **before** any data moves, then copy, commit
//! barrier, and only then the tombstone; recovery settles whatever a
//! crash left behind by re-copying from the newest live location
//! (target, then source, then hash home) and scrubbing every stale
//! copy, so chained migrations can never resurrect an old value.
//!
//! The contract is pinned by `tests/tuning_equivalence.rs` (`N = 1`
//! bit-identity, a proptest that mitigation is observationally
//! invisible under churn, and interrupted-migration recovery) and the
//! `repro tuning --json` experiment, whose `tuning_ok` verdict CI
//! greps: uniform workloads must show strategy parity, per-shard must
//! finish win-or-tie on skewed and shifting workloads, and armed
//! mitigation must actually migrate and drop the observed imbalance.

pub use ruskey;
pub use ruskey_analysis as analysis;
pub use ruskey_lsm as lsm;
pub use ruskey_rl as rl;
pub use ruskey_storage as storage;
pub use ruskey_workload as workload;
