//! Backend-equivalence integration tests: the engine must behave
//! identically on the simulated disk, the file-backed disk, and through
//! the block cache (which may change I/O counts but never results).

use std::collections::BTreeMap;
use std::sync::Arc;

use ruskey_repro::lsm::wal::Wal;
use ruskey_repro::lsm::{FlsmTree, KvEntry, LsmConfig};
use ruskey_repro::storage::{BlockCache, CostModel, FileDisk, SimulatedDisk, Storage};
use ruskey_repro::workload::{OpGenerator, OpMix, Operation, WorkloadSpec};

fn cfg() -> LsmConfig {
    LsmConfig {
        buffer_bytes: 2048,
        size_ratio: 4,
        ..LsmConfig::scaled_default()
    }
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        key_space: 400,
        key_len: 16,
        value_len: 32,
        ..WorkloadSpec::scaled_default(400)
    }
    .with_mix(OpMix {
        lookup: 0.3,
        update: 0.55,
        delete: 0.05,
        scan: 0.1,
    })
}

/// Drives the same op stream against a tree and returns all lookup/scan
/// results for comparison.
fn drive(tree: &mut FlsmTree, seed: u64, steps: usize) -> Vec<String> {
    let mut gen = OpGenerator::new(spec(), seed);
    let mut outcomes = Vec::new();
    for _ in 0..steps {
        match gen.next_op() {
            Operation::Get { key } => {
                outcomes.push(format!("{:?}", tree.get(&key)));
            }
            Operation::Put { key, value } => tree.put(key, value),
            Operation::Delete { key } => tree.delete(key),
            Operation::Scan { start, end, limit } => {
                let r = tree.scan(&start, &end, limit);
                outcomes.push(format!("scan:{}", r.len()));
            }
        }
    }
    outcomes
}

#[test]
fn simulated_and_file_backends_agree() {
    let dir = std::env::temp_dir().join(format!("ruskey-eqv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let sim = SimulatedDisk::new(512, CostModel::FREE);
    let file = FileDisk::new(&dir, 512, CostModel::FREE).unwrap();

    let mut t_sim = FlsmTree::new(cfg(), sim);
    let mut t_file = FlsmTree::new(cfg(), file);

    let a = drive(&mut t_sim, 77, 2500);
    let b = drive(&mut t_file, 77, 2500);
    assert_eq!(a, b, "file-backed engine diverged from simulated engine");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn block_cache_is_transparent_and_saves_reads() {
    let raw = SimulatedDisk::new(512, CostModel::FREE);
    let cached_base = SimulatedDisk::new(512, CostModel::FREE);
    let cached: Arc<BlockCache<SimulatedDisk>> = BlockCache::new(Arc::clone(&cached_base), 2048);

    let mut t_raw = FlsmTree::new(cfg(), raw.clone());
    let mut t_cached = FlsmTree::new(cfg(), cached.clone());

    let a = drive(&mut t_raw, 99, 2500);
    let b = drive(&mut t_cached, 99, 2500);
    assert_eq!(a, b, "cache changed results");

    // The cache must strictly reduce device reads (point lookups repeat).
    assert!(
        cached_base.metrics().pages_read < raw.metrics().pages_read,
        "cache saved no reads: {} vs {}",
        cached_base.metrics().pages_read,
        raw.metrics().pages_read
    );
    assert!(cached.hits() > 0);
}

#[test]
fn wal_recovery_restores_unflushed_writes() {
    let path = std::env::temp_dir().join(format!("ruskey-walrec-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Phase 1: apply writes to a tree while logging them; "crash" before
    // any flush happens (buffer larger than the data).
    let mut expected: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
    {
        let disk = SimulatedDisk::new(512, CostModel::FREE);
        let mut tree = FlsmTree::new(
            LsmConfig {
                buffer_bytes: 1 << 20,
                ..cfg()
            },
            disk,
        );
        let mut wal = Wal::open(&path).unwrap();
        let mut gen = OpGenerator::new(spec(), 5);
        let mut seq = 0u64;
        for _ in 0..300 {
            match gen.next_op() {
                Operation::Put { key, value } => {
                    seq += 1;
                    let e = KvEntry::put(key.clone(), value.clone(), seq);
                    wal.append(&e).unwrap();
                    expected.insert(key.to_vec(), Some(value.to_vec()));
                    tree.put(key, value);
                }
                Operation::Delete { key } => {
                    seq += 1;
                    let e = KvEntry::delete(key.clone(), seq);
                    wal.append(&e).unwrap();
                    expected.insert(key.to_vec(), None);
                    tree.delete(key);
                }
                _ => {}
            }
        }
        wal.sync().unwrap();
        // tree dropped here without flushing: simulated crash.
    }

    // Phase 2: recover into a fresh tree by replaying the log.
    let disk = SimulatedDisk::new(512, CostModel::FREE);
    let mut recovered = FlsmTree::new(cfg(), disk);
    for e in Wal::replay(&path).unwrap() {
        if e.is_tombstone() {
            recovered.delete(e.key);
        } else {
            recovered.put(e.key, e.value);
        }
    }
    for (k, v) in &expected {
        let got = recovered.get(k);
        match v {
            Some(v) => assert_eq!(got.as_deref(), Some(v.as_slice()), "lost write"),
            None => assert_eq!(got, None, "lost delete"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn virtual_latency_is_deterministic_across_runs() {
    let run = || {
        let disk = SimulatedDisk::new(512, CostModel::NVME);
        let mut tree = FlsmTree::new(cfg(), disk);
        drive(&mut tree, 123, 2000);
        tree.storage().clock().now_ns()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual time must be bit-for-bit reproducible");
    assert!(a > 0);
}

#[test]
fn cost_models_scale_latency_not_results() {
    let run = |cost: CostModel| {
        let disk = SimulatedDisk::new(512, cost);
        let mut tree = FlsmTree::new(cfg(), disk);
        let out = drive(&mut tree, 321, 1500);
        (out, tree.storage().clock().now_ns())
    };
    let (out_nvme, t_nvme) = run(CostModel::NVME);
    let (out_sata, t_sata) = run(CostModel::SATA_SSD);
    assert_eq!(out_nvme, out_sata, "device speed must not change semantics");
    assert!(
        t_sata > t_nvme,
        "slower device must accumulate more virtual time"
    );
}
