//! Observational equivalence of the sharded engine core: an `N`-shard
//! [`ShardedRusKey`] must behave exactly like the single-tree [`RusKey`]
//! for the same operation sequence — identical get/scan results for any
//! `N`, and identical mission-report counters at `N = 1` — plus routing
//! determinism and real OS-thread parallelism.
//!
//! `N = 1` is *not* an inline special case: it dispatches through the
//! same persistent worker pool as every other shard count (a single
//! worker thread), and the counter-equality test below is what pins that
//! the pooled path reproduces the pre-pool seed behavior exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ruskey_repro::ruskey::db::{RusKey, RusKeyConfig};
use ruskey_repro::ruskey::sharded::ShardedRusKey;
use ruskey_repro::ruskey::tuner::FixedPolicy;
use ruskey_repro::storage::{CostModel, SimulatedDisk, Storage};
use ruskey_repro::workload::routing::shard_for_key;
use ruskey_repro::workload::{
    bulk_load_pairs, encode_key, OpGenerator, OpMix, Operation, WorkloadSpec,
};

fn small_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 4096;
    cfg.lsm.size_ratio = 4;
    cfg
}

fn disk() -> Arc<dyn Storage> {
    SimulatedDisk::new(512, CostModel::NVME)
}

fn mixed_spec(key_space: u64) -> WorkloadSpec {
    WorkloadSpec {
        key_space,
        key_len: 16,
        value_len: 48,
        ..WorkloadSpec::scaled_default(key_space)
    }
    .with_mix(OpMix {
        lookup: 0.35,
        update: 0.4,
        delete: 0.1,
        scan: 0.15,
    })
}

/// Acceptance: for identical op sequences, `ShardedRusKey` with `N = 1` —
/// running on the worker pool, not an inline fast path — produces the
/// same mission-report counters (ops, updates, gamma, and the full
/// virtual-time accounting) as `RusKey`, and serves every mission from
/// one stable pool thread.
#[test]
fn single_shard_mission_counters_equal_ruskey() {
    let mut single = RusKey::with_tuner(small_cfg(), disk(), Box::new(FixedPolicy::moderate()));
    let mut sharded =
        ShardedRusKey::with_tuner(small_cfg(), 1, disk(), Box::new(FixedPolicy::moderate()));

    let pairs = bulk_load_pairs(2000, 16, 48, 7);
    single.bulk_load(pairs.clone());
    sharded.bulk_load(pairs);

    let mut g1 = OpGenerator::new(mixed_spec(2000), 9);
    let mut g2 = OpGenerator::new(mixed_spec(2000), 9);
    let mut worker = None;
    for mission in 0..6 {
        let ops1 = g1.take_ops(300);
        let ops2 = g2.take_ops(300);
        assert_eq!(ops1, ops2, "generators must agree");
        let r1 = single.run_mission(&ops1);
        let r2 = sharded.run_mission(&ops2);
        // The pooled N = 1 path: exactly one worker thread, the same one
        // every mission.
        assert_eq!(sharded.last_parallelism(), 1, "mission {mission}");
        let ids = sharded.last_worker_threads().to_vec();
        assert_eq!(ids.len(), 1, "mission {mission}");
        match worker {
            None => worker = Some(ids[0]),
            Some(w) => assert_eq!(w, ids[0], "mission {mission}: pool respawned"),
        }
        assert_eq!(
            r1.commit_ns, r2.commit_ns,
            "mission {mission}: commit barrier latency"
        );
        assert_eq!(
            r2.commit_ns, r2.commit_busy_ns,
            "mission {mission}: one shard means max == sum for the barrier"
        );
        assert_eq!(r1.ops, r2.ops, "mission {mission}");
        assert_eq!(r1.lookups, r2.lookups, "mission {mission}");
        assert_eq!(r1.updates, r2.updates, "mission {mission}");
        assert_eq!(r1.scans, r2.scans, "mission {mission}");
        assert_eq!(r1.gamma(), r2.gamma(), "mission {mission}");
        assert_eq!(
            r1.end_to_end_ns, r2.end_to_end_ns,
            "mission {mission}: virtual time"
        );
        assert_eq!(
            r1.device_busy_ns, r2.device_busy_ns,
            "mission {mission}: device-busy time"
        );
        assert_eq!(
            r2.end_to_end_ns, r2.device_busy_ns,
            "mission {mission}: one shard means one domain, wall == busy"
        );
        assert_eq!(r1.levels, r2.levels, "mission {mission}: per-level stats");
        assert_eq!(r1.policies_after, r2.policies_after, "mission {mission}");
    }
}

/// Acceptance: `N ∈ {2, 4}` produces identical get/scan results to the
/// single-tree store — property-style over several seeds, with a
/// `BTreeMap` reference model double-checking both engines.
#[test]
fn n_shard_store_is_observationally_equivalent() {
    for &shards in &[2usize, 4] {
        for seed in [11u64, 23, 37] {
            let mut reference = RusKey::untuned(small_cfg(), disk());
            let mut sharded = ShardedRusKey::untuned(small_cfg(), shards, disk());
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

            let mut gen = OpGenerator::new(mixed_spec(400), seed);
            for step in 0..2500 {
                match gen.next_op() {
                    Operation::Get { key } => {
                        let a = reference.get(&key);
                        let b = sharded.get(&key);
                        assert_eq!(
                            a, b,
                            "shards={shards} seed={seed} step={step}: get diverged"
                        );
                        assert_eq!(
                            b.as_deref(),
                            model.get(key.as_ref()).map(|v| v.as_slice()),
                            "shards={shards} seed={seed} step={step}: model diverged"
                        );
                    }
                    Operation::Put { key, value } => {
                        model.insert(key.to_vec(), value.to_vec());
                        reference.put(key.clone(), value.clone());
                        sharded.put(key, value);
                    }
                    Operation::Delete { key } => {
                        model.remove(key.as_ref());
                        reference.delete(key.clone());
                        sharded.delete(key);
                    }
                    Operation::Scan { start, end, limit } => {
                        let a = reference.scan(&start, &end, limit);
                        let b = sharded.scan(&start, &end, limit);
                        assert_eq!(
                            a, b,
                            "shards={shards} seed={seed} step={step}: scan diverged"
                        );
                    }
                }
            }
        }
    }
}

/// Mission execution agrees across shard counts on the logical operation
/// composition (scans broadcast internally but count once).
#[test]
fn mission_composition_is_shard_count_invariant() {
    let mut reports = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let mut db = ShardedRusKey::untuned(small_cfg(), shards, disk());
        db.bulk_load(bulk_load_pairs(1500, 16, 48, 5));
        let mut g = OpGenerator::new(mixed_spec(1500), 13);
        let r = db.run_mission(&g.take_ops(500));
        reports.push((shards, r));
    }
    let (_, base) = &reports[0];
    for (shards, r) in &reports[1..] {
        assert_eq!(r.ops, base.ops, "{shards} shards: ops");
        assert_eq!(r.lookups, base.lookups, "{shards} shards: lookups");
        assert_eq!(r.updates, base.updates, "{shards} shards: updates");
        assert_eq!(r.scans, base.scans, "{shards} shards: scans");
        assert_eq!(r.gamma(), base.gamma(), "{shards} shards: gamma");
    }
}

/// Shard routing must be a pure, stable function of the key bytes: an
/// independent FNV-1a implementation pins the mapping, and repeated calls
/// agree (determinism across runs).
#[test]
fn shard_routing_is_deterministic() {
    fn fnv1a(key: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }
    let mut rng = StdRng::seed_from_u64(99);
    for shards in [1usize, 2, 3, 4, 8, 16] {
        for _ in 0..500 {
            let key = encode_key(rng.gen_range(0u64..1_000_000), 16);
            let expected = (fnv1a(&key) % shards as u64) as usize;
            assert_eq!(shard_for_key(&key, shards), expected);
            assert_eq!(
                shard_for_key(&key, shards),
                expected,
                "second call must agree"
            );
        }
    }
}

/// Acceptance: parallel mission execution across shards uses ≥ 2 OS
/// threads (one persistent pool worker per shard).
#[test]
fn parallel_missions_run_on_multiple_os_threads() {
    let mut db = ShardedRusKey::untuned(small_cfg(), 4, disk());
    db.bulk_load(bulk_load_pairs(2000, 16, 48, 3));
    let mut g = OpGenerator::new(mixed_spec(2000), 21);
    for _ in 0..3 {
        db.run_mission(&g.take_ops(400));
        assert_eq!(
            db.last_parallelism(),
            4,
            "each of the 4 shards must execute on its own OS thread"
        );
    }
    // The data survives the parallel missions intact.
    let count = db
        .scan(&encode_key(0, 16), &encode_key(2000, 16), usize::MAX)
        .len();
    assert!(count > 0, "scan after parallel missions is empty");
}
