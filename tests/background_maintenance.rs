//! Observational equivalence of background maintenance: a store running
//! flushes and compactions off the hot path (deferred to mission
//! boundaries, merges built in bounded steps, superseded runs retired
//! under snapshot pins) must remain bit-identical to a quiescent store
//! that compacts inline — for gets and scans, at every shard count, and
//! in particular *while* a merge is in flight.
//!
//! The picker's unit tests (score ordering, trivial-move overlap bound)
//! live next to it in `crates/lsm/src/picker.rs`; this file pins the
//! end-to-end read contract across the engine layers.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use ruskey_repro::lsm::{FlsmTree, LsmConfig};
use ruskey_repro::ruskey::db::{RusKey, RusKeyConfig};
use ruskey_repro::ruskey::sharded::ShardedRusKey;
use ruskey_repro::storage::{CostModel, SimulatedDisk, Storage};

/// Small buffers so a few hundred ops produce real flushes and merges.
fn cfg(background: bool) -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 1024;
    cfg.lsm.size_ratio = 4;
    cfg.lsm.background_maintenance = background;
    cfg.lsm.l0_stall_runs = 16;
    cfg
}

fn disk() -> Arc<dyn Storage> {
    SimulatedDisk::new(256, CostModel::FREE)
}

fn key(k: u16) -> Bytes {
    Bytes::copy_from_slice(&(k as u64).to_be_bytes())
}

fn value(k: u16, v: u8) -> Bytes {
    let mut buf = vec![v; 32];
    buf[..2].copy_from_slice(&k.to_be_bytes());
    Bytes::from(buf)
}

/// An operation in the random-interleaving equivalence test.
#[derive(Debug, Clone)]
enum ModelOp {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u16),
}

fn model_op() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        5 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| ModelOp::Put(k % 384, v)),
        1 => any::<u16>().prop_map(|k| ModelOp::Delete(k % 384)),
        3 => any::<u16>().prop_map(|k| ModelOp::Get(k % 384)),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| ModelOp::Scan(a % 384, b % 384)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// For arbitrary put/delete/get/scan interleavings and `N ∈ {1, 2,
    /// 4}` shards, a background-maintenance `ShardedRusKey` — stepping
    /// its deferred work at mission boundaries every 24 ops, so reads
    /// routinely land between a merge being built and applied — returns
    /// exactly what the quiescent inline-compacting store and a
    /// `BTreeMap` model return.
    #[test]
    fn background_store_is_bit_identical_to_quiescent(
        ops in prop::collection::vec(model_op(), 1..300),
        shards_idx in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shards_idx];
        let mut bg = ShardedRusKey::untuned(cfg(true), shards, disk());
        let mut quiet = RusKey::untuned(cfg(false), disk());
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();

        for (step, op) in ops.iter().enumerate() {
            match *op {
                ModelOp::Put(k, v) => {
                    model.insert(key(k), value(k, v));
                    bg.put(key(k), value(k, v));
                    quiet.put(key(k), value(k, v));
                }
                ModelOp::Delete(k) => {
                    model.remove(&key(k));
                    bg.delete(key(k));
                    quiet.delete(key(k));
                }
                ModelOp::Get(k) => {
                    let got = bg.get(&key(k));
                    prop_assert_eq!(&got, &quiet.get(&key(k)), "step {}: stores diverged", step);
                    prop_assert_eq!(got.as_ref(), model.get(&key(k)), "step {}: model diverged", step);
                }
                ModelOp::Scan(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got = bg.scan(&key(lo), &key(hi), usize::MAX);
                    prop_assert_eq!(&got, &quiet.scan(&key(lo), &key(hi), usize::MAX),
                        "step {}: scans diverged", step);
                    let want: Vec<(Bytes, Bytes)> = model
                        .range(key(lo)..key(hi))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want, "step {}: scan model diverged", step);
                }
            }
            if (step + 1) % 24 == 0 {
                // The mission boundary: each shard worker runs its
                // bounded maintenance steps, possibly leaving a built
                // merge in flight for the next reads to race.
                bg.run_mission(&[]);
            }
        }

        // Drain the structural debt, then sweep the full key space.
        for _ in 0..12 {
            bg.run_mission(&[]);
        }
        for k in 0u16..384 {
            prop_assert_eq!(bg.get(&key(k)).as_ref(), model.get(&key(k)), "final sweep at {}", k);
        }
        let full = bg.scan(&key(0), &key(384), usize::MAX);
        prop_assert_eq!(full.len(), model.len(), "final scan cardinality");
    }
}

/// Deterministic companion: a heavy overwrite stream at every shard
/// count, with single maintenance steps interleaved so in-flight merge
/// windows provably occur (asserted via the `bg_compactions` counter),
/// and gets/scans compared against the quiescent store at every
/// boundary.
#[test]
fn in_flight_merges_are_read_equivalent_at_each_shard_count() {
    for &shards in &[1usize, 2, 4] {
        let mut bg = ShardedRusKey::untuned(cfg(true), shards, disk());
        let mut quiet = RusKey::untuned(cfg(false), disk());
        // 1201 distinct keys so every shard's resident set outgrows its
        // L0 capacity even at N = 4 — smaller spaces fit entirely in L0
        // and legitimately never compact.
        for i in 0u16..4800 {
            let k = (i.wrapping_mul(7)) % 1201;
            if i % 11 == 10 {
                bg.delete(key(k));
                quiet.delete(key(k));
            } else {
                bg.put(key(k), value(k, (i % 251) as u8));
                quiet.put(key(k), value(k, (i % 251) as u8));
            }
            if (i + 1) % 48 == 0 {
                bg.run_mission(&[]);
                for probe in 0..8u16 {
                    let p = (k + probe * 149) % 1201;
                    assert_eq!(
                        bg.get(&key(p)),
                        quiet.get(&key(p)),
                        "shards={shards} i={i}: get diverged at boundary"
                    );
                }
                assert_eq!(
                    bg.scan(&key(0), &key(1201), 64),
                    quiet.scan(&key(0), &key(1201), 64),
                    "shards={shards} i={i}: scan diverged at boundary"
                );
            }
        }
        let stats = bg.stats();
        assert!(
            stats.bg_compactions > 0,
            "shards={shards}: the stream must exercise background structural steps"
        );
        assert_eq!(stats.stall_ns, 0, "FREE cost model: stalls measure no time");
        for _ in 0..12 {
            bg.run_mission(&[]);
        }
        for k in 0u16..1201 {
            assert_eq!(
                bg.get(&key(k)),
                quiet.get(&key(k)),
                "shards={shards}: drained stores diverged at {k}"
            );
        }
    }
}

/// Regression for the ad-hoc backpressure bypass: an *ad-hoc* write
/// burst in background mode — no missions, no explicit maintenance —
/// is subject to the same backpressure as the mission path. L0 stays
/// bounded by `l0_stall_runs`, boundary maintenance actually runs on
/// the workers, and the time writes spent stalled (backstop flushes and
/// stall-loop drains) is recorded as `stall_ns`, never lost.
#[test]
fn adhoc_write_burst_in_background_mode_is_backpressured() {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 1024;
    cfg.lsm.size_ratio = 4;
    cfg.lsm.background_maintenance = true;
    cfg.lsm.l0_stall_runs = 4;
    // A real cost model, unlike the FREE one above: stalled virtual time
    // must be measurable for the recording assertion to mean anything.
    let disk = SimulatedDisk::new(256, CostModel::NVME);
    let shards = 2;
    let mut db = ShardedRusKey::untuned(cfg, shards, disk);
    // Values big enough that a shard's memtable passes the 2x-buffer
    // backstop *between* worker maintenance boundaries — the burst must
    // actually hit the write-path backpressure, not just the boundaries.
    let big_value = |k: u16, v: u8| {
        let mut buf = vec![v; 96];
        buf[..2].copy_from_slice(&k.to_be_bytes());
        Bytes::from(buf)
    };
    for i in 0u16..3000 {
        let k = i % 997;
        db.put(key(k), big_value(k, (i % 251) as u8));
    }
    for shard in 0..shards {
        assert!(
            db.shard(shard).level_run_count(0) <= 4,
            "shard {shard}: an ad-hoc burst must not grow L0 past l0_stall_runs"
        );
    }
    let stats = db.stats();
    assert!(
        stats.bg_compactions > 0,
        "boundary maintenance must run on the ad-hoc path"
    );
    assert!(
        stats.stall_ns > 0,
        "backpressured ad-hoc writes must record their stall time"
    );
}

/// A snapshot taken from a background tree keeps serving the pinned
/// state — including scans through the tree the snapshot came from —
/// while merges retire the runs underneath it.
#[test]
fn tree_snapshot_survives_concurrent_structural_churn() {
    let disk = SimulatedDisk::new(256, CostModel::FREE);
    let lsm_cfg = LsmConfig {
        buffer_bytes: 1024,
        size_ratio: 4,
        background_maintenance: true,
        l0_stall_runs: 16,
        ..LsmConfig::scaled_default()
    };
    let mut tree = FlsmTree::new(lsm_cfg, Arc::clone(&disk) as Arc<dyn Storage>);
    let mut frozen: BTreeMap<Bytes, Bytes> = BTreeMap::new();
    for i in 0u16..600 {
        let k = i % 199;
        tree.put(key(k), value(k, (i % 250) as u8));
        frozen.insert(key(k), value(k, (i % 250) as u8));
    }
    tree.flush();
    let snap = tree.snapshot();

    // Overwrite everything and drain all structural work.
    for i in 0u16..900 {
        let k = i % 199;
        tree.put(key(k), value(k, 251));
    }
    tree.flush();
    while tree.maintain(4) > 0 {}
    assert!(tree.bg_compactions() > 0, "churn must trigger merges");

    for k in 0u16..199 {
        assert_eq!(
            snap.get(tree.storage().as_ref(), &key(k)).as_ref(),
            frozen.get(&key(k)),
            "snapshot must read the pinned state at {k}"
        );
        assert_eq!(
            tree.get(&key(k)),
            Some(value(k, 251)),
            "live tree must read the new state at {k}"
        );
    }
}
