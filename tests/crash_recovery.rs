//! Crash-injection and recovery tests for the durable write path.
//!
//! Three suites pin the durability contract of the WAL + cross-shard
//! group-commit engine:
//!
//! 1. **Crash-point matrix**: a [`CrashPoint`] fault hook kills the write
//!    path at every interesting instant (pre-append, post-append,
//!    post-sync, mid-flush) at `N ∈ {1, 2, 4}` shards; recovery must
//!    restore exactly the acknowledged prefix (and, for the torn
//!    mid-flush sync, a strict per-shard prefix of the batch). The
//!    group-commit barrier is *overlapped* — every shard's commit leg
//!    runs concurrently on its persistent worker — so a shard crashing
//!    mid-barrier does not stop its siblings' fsyncs: sync-time crash
//!    points leave the sibling shards' batches durable, and a dedicated
//!    overlapped-commit case pins that under mission-driven operation.
//! 2. **Recovery equivalence proptest**: random op sequences with a crash
//!    at a random buffer-loss point — the recovered store's get/scan
//!    results must be bit-identical to a store that only executed the
//!    durable prefix (everything up to the last completed commit
//!    barrier).
//! 3. **WAL replay fuzz proptest**: bit flips, truncation, and appended
//!    garbage over a valid log — replay never panics and yields exactly
//!    the longest valid prefix.
//!
//! The WAL suites (1–3) keep their working set below `buffer_bytes` (no
//! memtable flush), so the log alone carries their durability. Suite 4
//! exercises the layer *below*: **manifest crash points** on a fully
//! persistent store — the crash between a flush's data-page writes and
//! its manifest edit, the torn manifest tail, the crash after the edit
//! but before the WAL truncates, and the crash in the middle of a
//! manifest checkpoint — asserting recovery always folds the longest
//! consistent prefix, never references missing pages, and loses nothing
//! (whatever the manifest batch misses, the untruncated WAL still
//! covers).
//!
//! Suite 5 drops below even the manifest: **torn power cuts** on the
//! storage barriers themselves ([`PowerCutPoint`]). A cut before the
//! extent fsync leaves a torn data file; a cut before the directory
//! fsync unlinks the extent's name wholesale; a checkpoint's un-fsynced
//! rename rolls back to the old manifest bytes. In every case recovery
//! must yield exactly the acknowledged prefix, sweep the orphaned extent
//! files a pre-commit cut left behind (safe id reuse included), and
//! surface a *missing* referenced extent as a typed error — never a
//! panic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use ruskey_repro::lsm::{CrashPoint, KvEntry, ManifestCrashPoint, Wal};
use ruskey_repro::ruskey::db::RusKeyConfig;
use ruskey_repro::ruskey::sharded::{DurabilityConfig, PersistenceConfig, ShardedRusKey};
use ruskey_repro::storage::{CostModel, PowerCutPoint, SimulatedDisk, Storage};
use ruskey_repro::workload::routing::shard_for_key;
use ruskey_repro::workload::{
    bulk_load_pairs, encode_key, OpGenerator, OpMix, Operation, WorkloadSpec,
};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique WAL directory per scenario (parallel tests must not share).
fn wal_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ruskey-crashrec-{tag}-{}-{n}", std::process::id()))
}

/// Config with a buffer large enough that nothing flushes: the WAL alone
/// carries the durability of every scenario below.
fn big_buffer_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 1 << 20;
    cfg.lsm.size_ratio = 4;
    cfg
}

fn disk() -> Arc<dyn Storage> {
    SimulatedDisk::new(512, CostModel::NVME)
}

fn durable_store(shards: usize, dur: &DurabilityConfig) -> ShardedRusKey {
    ShardedRusKey::try_with_tuner_durable(
        big_buffer_cfg(),
        shards,
        disk(),
        Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
        dur,
    )
    .expect("open durable store")
}

fn recovered_store(shards: usize, dur: &DurabilityConfig) -> ShardedRusKey {
    ShardedRusKey::recover(
        big_buffer_cfg(),
        shards,
        disk(),
        Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
        dur,
    )
    .expect("recover durable store")
}

fn key(i: u64) -> Bytes {
    encode_key(i, 16)
}

fn val(i: u64) -> Vec<u8> {
    format!("value-{i:06}").into_bytes()
}

// ----------------------------------------------------------------------
// 1. Crash-point matrix
// ----------------------------------------------------------------------

/// Acceptance: at every crash point and `N ∈ {1, 2, 4}`, recovery yields
/// exactly the acknowledged records — the phase-1 batch committed by the
/// barrier, plus (point-dependent) the crashed shard's phase-2 records.
#[test]
fn recovery_restores_exactly_the_synced_prefix_at_every_crash_point() {
    const PHASE1: u64 = 40;
    const PHASE2: u64 = 40;
    for shards in [1usize, 2, 4] {
        for point in [
            CrashPoint::PreAppend,
            CrashPoint::PostAppend,
            CrashPoint::PostSync,
            CrashPoint::MidFlush,
        ] {
            let dir = wal_dir("matrix");
            let dur = DurabilityConfig::group_commit(&dir);
            let mut db = durable_store(shards, &dur);

            // Phase 1: a committed batch — durable on every shard.
            for i in 0..PHASE1 {
                db.put(key(i), val(i));
            }
            db.group_commit();
            assert!(!db.crashed());

            // Phase 2: arm the crash on shard 0, then keep writing. The
            // keys shard 0 receives, in append order, drive the prefix
            // assertion below. Append-time points fire on the third
            // shard-0 append; sync-time points fire at the next barrier
            // (visited once per batch).
            let countdown = match point {
                CrashPoint::PreAppend | CrashPoint::PostAppend => 2,
                CrashPoint::PostSync | CrashPoint::MidFlush => 0,
            };
            db.shard_mut(0)
                .wal_mut()
                .expect("durable shard has a WAL")
                .arm_crash(point, countdown);
            let mut shard0_phase2: Vec<u64> = Vec::new();
            for i in PHASE1..PHASE1 + PHASE2 {
                db.put(key(i), val(i));
                if shard_for_key(&key(i), shards) == 0 {
                    shard0_phase2.push(i);
                }
                if db.crashed() {
                    break; // process death: no further ops are issued
                }
            }
            // Append-time points fire during the puts; sync-time points
            // fire inside the commit barrier.
            if !db.crashed() {
                db.group_commit();
            }
            assert!(
                db.crashed(),
                "shards={shards} point={point:?}: the armed crash never fired"
            );
            drop(db); // unflushed user-space WAL buffers die here

            let mut rec = recovered_store(shards, &dur);

            // Phase 1 was acknowledged by its barrier: always recovered.
            for i in 0..PHASE1 {
                assert_eq!(
                    rec.get(&key(i)).as_deref(),
                    Some(val(i).as_slice()),
                    "shards={shards} point={point:?}: committed key {i} lost"
                );
            }
            // Phase 2 on the non-crashed shards: depends on whether the
            // barrier ran. Append-time crashes kill the process before
            // any barrier — the siblings' buffered records die unflushed.
            // Sync-time crashes fire *inside* the overlapped barrier,
            // whose per-shard legs run concurrently: the crashed shard
            // cannot stop its siblings, so their batches become durable.
            let barrier_ran = matches!(point, CrashPoint::PostSync | CrashPoint::MidFlush);
            for i in PHASE1..PHASE1 + PHASE2 {
                if shard_for_key(&key(i), shards) != 0 {
                    if barrier_ran {
                        assert_eq!(
                            rec.get(&key(i)).as_deref(),
                            Some(val(i).as_slice()),
                            "shards={shards} point={point:?}: sibling shard's \
                             committed key {i} lost — the overlapped barrier \
                             must complete the non-crashed shards' fsyncs"
                        );
                    } else {
                        assert_eq!(
                            rec.get(&key(i)),
                            None,
                            "shards={shards} point={point:?}: unacknowledged key {i} \
                             on a sibling shard resurfaced"
                        );
                    }
                }
            }
            // Phase 2 on the crashed shard: exactly what the point allows.
            let recovered0: Vec<bool> = shard0_phase2
                .iter()
                .map(|&i| rec.get(&key(i)).is_some())
                .collect();
            match point {
                CrashPoint::PreAppend | CrashPoint::PostAppend => {
                    // The buffer died before any flush: nothing survives.
                    assert!(
                        recovered0.iter().all(|&p| !p),
                        "shards={shards} point={point:?}: buffered records survived"
                    );
                }
                CrashPoint::PostSync => {
                    // The barrier's fsync completed before the death: the
                    // whole batch is durable.
                    assert!(
                        recovered0.iter().all(|&p| p),
                        "shards={shards} point={point:?}: synced batch lost"
                    );
                }
                CrashPoint::MidFlush => {
                    // Torn sync: a strict prefix of the batch (no holes —
                    // a recovered record after a missing one would mean
                    // replay skipped a corrupt region).
                    let first_missing = recovered0
                        .iter()
                        .position(|&p| !p)
                        .unwrap_or(recovered0.len());
                    assert!(
                        recovered0[first_missing..].iter().all(|&p| !p),
                        "shards={shards}: torn batch recovered with holes: {recovered0:?}"
                    );
                    assert!(
                        first_missing < recovered0.len() || recovered0.is_empty(),
                        "shards={shards}: a torn sync must not persist the full batch"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Acceptance: under mission-driven operation the group-commit barrier
/// issues at most one fsync per shard per batch, acknowledges every
/// logged record, and its cost is visible in the mission report.
#[test]
fn group_commit_syncs_at_most_once_per_shard_per_mission() {
    for shards in [1usize, 2, 4] {
        let dir = wal_dir("groupcommit");
        let dur = DurabilityConfig::group_commit(&dir);
        let mut cfg = RusKeyConfig::scaled_default();
        cfg.lsm.buffer_bytes = 4096;
        cfg.lsm.size_ratio = 4;
        let mut db = ShardedRusKey::try_with_tuner_durable(
            cfg,
            shards,
            disk(),
            Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
            &dur,
        )
        .expect("open durable store");
        db.bulk_load(bulk_load_pairs(1200, 16, 48, 11));
        let spec = WorkloadSpec {
            key_space: 1200,
            value_len: 48,
            ..WorkloadSpec::scaled_default(1200)
        }
        .with_mix(OpMix::balanced());
        let mut g = OpGenerator::new(spec, 17);
        for mission in 0..5 {
            let r = db.run_mission(&g.take_ops(300));
            assert!(
                r.wal_syncs <= shards as u64,
                "shards={shards} mission={mission}: {} fsyncs for one batch \
                 (group commit must sync once per shard at most)",
                r.wal_syncs
            );
            assert_eq!(
                r.wal_appends, r.updates,
                "shards={shards} mission={mission}: every write logged exactly once"
            );
            assert_eq!(
                r.wal_synced, r.wal_appends,
                "shards={shards} mission={mission}: the barrier acknowledges the batch"
            );
            if r.updates > 0 {
                assert!(
                    r.wal_batch_size() > 1.0,
                    "shards={shards} mission={mission}: batch size {} — group \
                     commit must amortize the fsync",
                    r.wal_batch_size()
                );
                assert!(
                    r.commit_ns > 0,
                    "shards={shards} mission={mission}: barrier cost must be charged"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Acceptance (ISSUE 4): one shard crashes *mid-barrier* (torn fsync)
/// while its siblings' overlapped commit legs complete. Recovery must
/// restore exactly the acknowledged prefix — the earlier mission's batch
/// everywhere, the final batch in full on the surviving shards, a strict
/// prefix of it on the crashed shard — and the mission reports must show
/// the ≤ 1-fsync-per-shard-per-batch bound held throughout.
#[test]
fn overlapped_commit_crash_keeps_sibling_batches_durable() {
    const BATCH: u64 = 60;
    for shards in [2usize, 4] {
        let dir = wal_dir("overlap");
        let dur = DurabilityConfig::group_commit(&dir);
        let mut db = durable_store(shards, &dur);

        let put = |i: u64| Operation::Put {
            key: key(i),
            value: Bytes::from(val(i)),
        };
        // Mission 1: acknowledged everywhere by its overlapped barrier.
        let ops1: Vec<Operation> = (0..BATCH).map(put).collect();
        let r1 = db.run_mission(&ops1);
        assert!(
            r1.wal_syncs <= shards as u64,
            "shards={shards}: mission 1 broke the ≤1-fsync-per-shard bound"
        );
        assert_eq!(r1.wal_synced, r1.wal_appends);
        assert!(!db.crashed());

        // Mission 2: shard 0's commit leg tears mid-fsync. The legs run
        // concurrently on the shard workers, so the siblings' fsyncs
        // complete regardless.
        db.shard_mut(0)
            .wal_mut()
            .expect("durable shard has a WAL")
            .arm_crash(CrashPoint::MidFlush, 0);
        let ops2: Vec<Operation> = (BATCH..2 * BATCH).map(put).collect();
        let shard0_batch2: Vec<u64> = (BATCH..2 * BATCH)
            .filter(|&i| shard_for_key(&key(i), shards) == 0)
            .collect();
        assert!(
            !shard0_batch2.is_empty(),
            "shards={shards}: the crash scenario needs writes on shard 0"
        );
        let r2 = db.run_mission(&ops2);
        assert!(
            db.crashed(),
            "shards={shards}: the mid-flush crash never fired"
        );
        assert!(
            r2.wal_syncs <= shards as u64,
            "shards={shards}: mission 2 broke the ≤1-fsync-per-shard bound"
        );
        assert!(
            r2.commit_ns <= r2.commit_busy_ns,
            "shards={shards}: overlapped barrier latency (max) exceeded the \
             sequential sum"
        );
        drop(db); // the crashed shard's unflushed tail dies here

        let mut rec = recovered_store(shards, &dur);
        // Mission 1 was acknowledged everywhere: always recovered.
        for i in 0..BATCH {
            assert_eq!(
                rec.get(&key(i)).as_deref(),
                Some(val(i).as_slice()),
                "shards={shards}: committed key {i} lost"
            );
        }
        // Mission 2 on the surviving shards: their overlapped legs
        // completed, the batch is durable.
        for i in BATCH..2 * BATCH {
            if shard_for_key(&key(i), shards) != 0 {
                assert_eq!(
                    rec.get(&key(i)).as_deref(),
                    Some(val(i).as_slice()),
                    "shards={shards}: sibling shard's committed key {i} lost \
                     mid-barrier — the crashed shard must not stop its siblings"
                );
            }
        }
        // Mission 2 on the crashed shard: a strict prefix of its lane, in
        // append order, with no holes.
        let recovered0: Vec<bool> = shard0_batch2
            .iter()
            .map(|&i| rec.get(&key(i)).is_some())
            .collect();
        let first_missing = recovered0
            .iter()
            .position(|&p| !p)
            .unwrap_or(recovered0.len());
        assert!(
            recovered0[first_missing..].iter().all(|&p| !p),
            "shards={shards}: torn batch recovered with holes: {recovered0:?}"
        );
        assert!(
            first_missing < recovered0.len(),
            "shards={shards}: a torn mid-flush sync must not persist the \
             crashed shard's full batch"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Opening a *fresh* durable store truncates any leftover logs: a new
/// store's sequence numbers restart at 1, so inheriting a previous
/// incarnation's records would let stale (higher-seq) writes shadow new
/// ones at the next recovery. `recover` is the path for continuing.
#[test]
fn fresh_durable_store_truncates_leftover_logs() {
    let dir = wal_dir("freshstart");
    let dur = DurabilityConfig::group_commit(&dir);
    {
        let mut db = durable_store(2, &dur);
        db.put(key(1), val(1));
        db.put(key(2), val(2));
        db.group_commit();
    }
    {
        // Same directory, fresh store — the old incarnation's logs must
        // not leak into it.
        let mut db = durable_store(2, &dur);
        db.put(key(3), val(3));
        db.group_commit();
    }
    let mut rec = recovered_store(2, &dur);
    assert_eq!(rec.get(&key(1)), None, "stale log record resurrected");
    assert_eq!(rec.get(&key(2)), None, "stale log record resurrected");
    assert_eq!(rec.get(&key(3)).as_deref(), Some(val(3).as_slice()));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovering with fewer shards than the log directory describes is
/// refused: the unread shard logs hold acknowledged writes that would
/// otherwise vanish silently.
#[test]
fn recover_refuses_dropping_shard_logs() {
    let dir = wal_dir("shardcount");
    let dur = DurabilityConfig::group_commit(&dir);
    {
        let mut db = durable_store(4, &dur);
        for i in 0..20u64 {
            db.put(key(i), val(i));
        }
        db.group_commit();
    }
    let err = ShardedRusKey::recover(
        big_buffer_cfg(),
        2,
        disk(),
        Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
        &dur,
    )
    .err()
    .expect("recovery at a smaller shard count must be refused");
    assert!(
        err.to_string().contains("4 shards"),
        "unhelpful error: {err}"
    );
    // The matching shard count still recovers everything.
    let mut rec = recovered_store(4, &dur);
    for i in 0..20u64 {
        assert_eq!(rec.get(&key(i)).as_deref(), Some(val(i).as_slice()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// 2. Recovery equivalence proptest
// ----------------------------------------------------------------------

/// One step of the random durable workload.
#[derive(Debug, Clone)]
enum DurOp {
    Put(u16, u8),
    Delete(u16),
}

fn dur_op() -> impl Strategy<Value = DurOp> {
    prop_oneof![
        5 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| DurOp::Put(k % 120, v)),
        1 => any::<u16>().prop_map(|k| DurOp::Delete(k % 120)),
    ]
}

fn apply(db: &mut ShardedRusKey, op: &DurOp) {
    match *op {
        DurOp::Put(k, v) => db.put(key(k as u64), vec![v; 8]),
        DurOp::Delete(k) => db.delete(key(k as u64)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random op sequences with a crash at a random buffer-loss point:
    /// the recovered store's get/scan results are bit-identical to a
    /// store that only executed the durable prefix (ops up to the last
    /// completed group-commit barrier).
    #[test]
    fn recovered_store_equals_durable_prefix(
        ops in prop::collection::vec(dur_op(), 1..150),
        shards in 1usize..4,
        commit_every in 4usize..20,
        pre_append in any::<bool>(),
        countdown in 0u64..12,
    ) {
        let dir = wal_dir("equiv");
        let dur = DurabilityConfig::group_commit(&dir);
        let mut db = durable_store(shards, &dur);
        let point = if pre_append { CrashPoint::PreAppend } else { CrashPoint::PostAppend };
        db.shard_mut(0)
            .wal_mut()
            .expect("durable shard has a WAL")
            .arm_crash(point, countdown);

        // Drive the workload with a commit barrier every `commit_every`
        // ops; the durable prefix is everything up to the last barrier
        // that completed before the crash.
        let mut durable_prefix = 0usize;
        let mut executed = 0usize;
        for (i, op) in ops.iter().enumerate() {
            apply(&mut db, op);
            executed = i + 1;
            if db.crashed() {
                break;
            }
            if executed.is_multiple_of(commit_every) {
                db.group_commit();
                durable_prefix = executed;
            }
        }
        if !db.crashed() {
            db.group_commit();
            durable_prefix = executed;
        }
        drop(db);

        // Reference: a fresh (non-durable) store executing exactly the
        // durable prefix.
        let mut reference = ShardedRusKey::untuned(big_buffer_cfg(), shards, disk());
        for op in &ops[..durable_prefix] {
            apply(&mut reference, op);
        }

        let mut rec = recovered_store(shards, &dur);
        for k in 0u64..120 {
            prop_assert_eq!(
                rec.get(&key(k)),
                reference.get(&key(k)),
                "shards={} prefix={} key={}: get diverged",
                shards, durable_prefix, k
            );
        }
        let lo = key(0);
        let hi = key(120);
        prop_assert_eq!(
            rec.scan(&lo, &hi, usize::MAX),
            reference.scan(&lo, &hi, usize::MAX),
            "shards={} prefix={}: scan diverged",
            shards, durable_prefix
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ----------------------------------------------------------------------
// 3. WAL replay fuzz
// ----------------------------------------------------------------------

/// A corruption applied to a valid WAL image.
#[derive(Debug, Clone)]
enum Corruption {
    /// Flip one bit at (position % len).
    BitFlip(usize),
    /// Keep only the first (len % (size + 1)) bytes.
    Truncate(usize),
    /// Append arbitrary bytes past the valid tail.
    Garbage(Vec<u8>),
}

fn corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        3 => any::<usize>().prop_map(Corruption::BitFlip),
        3 => any::<usize>().prop_map(Corruption::Truncate),
        2 => prop::collection::vec(any::<u8>(), 1..64).prop_map(Corruption::Garbage),
    ]
}

/// The on-disk size of one record: `[len][crc]` header + body.
fn record_size(e: &KvEntry) -> usize {
    8 + 11 + e.key.len() + e.value.len()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Replay over corrupted WAL bytes never panics and yields exactly
    /// the longest valid prefix of the original records.
    #[test]
    fn replay_of_corrupted_wal_yields_the_valid_prefix(
        entries in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..20),
             prop::collection::vec(any::<u8>(), 0..30),
             any::<bool>()),
            0..30,
        ),
        corruption in corruption(),
    ) {
        let path = wal_dir("fuzz").with_extension("wal");
        let _ = std::fs::remove_file(&path);
        let originals: Vec<KvEntry> = entries
            .iter()
            .enumerate()
            .map(|(i, (k, v, is_put))| {
                if *is_put {
                    KvEntry::put(Bytes::from(k.clone()), Bytes::from(v.clone()), i as u64 + 1)
                } else {
                    KvEntry::delete(Bytes::from(k.clone()), i as u64 + 1)
                }
            })
            .collect();
        {
            let mut wal = Wal::open(&path).unwrap();
            for e in &originals {
                wal.append(e).unwrap();
            }
            wal.sync().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();

        // Record byte boundaries in the valid image, for computing which
        // records a corruption can reach.
        let ends: Vec<usize> = originals
            .iter()
            .scan(0usize, |off, e| {
                *off += record_size(e);
                Some(*off)
            })
            .collect();

        let expected: usize = match &corruption {
            Corruption::BitFlip(pos) if !data.is_empty() => {
                let pos = pos % data.len();
                data[pos] ^= 1 << (pos % 8);
                // Replay must stop at the record containing the flipped
                // byte; everything before it is untouched.
                ends.iter().position(|&end| pos < end).unwrap_or(ends.len())
            }
            Corruption::BitFlip(_) => 0,
            Corruption::Truncate(keep) => {
                let keep = keep % (data.len() + 1);
                data.truncate(keep);
                // Exactly the records fully contained in the kept bytes.
                ends.iter().filter(|&&end| end <= keep).count()
            }
            Corruption::Garbage(bytes) => {
                data.extend_from_slice(bytes);
                originals.len()
            }
        };
        std::fs::write(&path, &data).unwrap();

        let replayed = Wal::replay(&path).unwrap(); // must not panic
        prop_assert_eq!(
            replayed.len(),
            expected,
            "corruption {:?}: wrong prefix length",
            &corruption
        );
        for (r, o) in replayed.iter().zip(&originals) {
            prop_assert_eq!(r, o, "prefix record diverged");
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ----------------------------------------------------------------------
// 4. Manifest crash points (full-store persistence)
// ----------------------------------------------------------------------

fn persist_root(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ruskey-crashrec-manifest-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn persist_cfg(root: &PathBuf, checkpoint_every: u64) -> PersistenceConfig {
    let mut p = PersistenceConfig::new(root);
    p.page_size = 512;
    p.cost = CostModel::FREE;
    p.checkpoint_every = checkpoint_every;
    p
}

fn persistent_store(shards: usize, p: &PersistenceConfig) -> ShardedRusKey {
    ShardedRusKey::try_with_tuner_persistent(
        big_buffer_cfg(),
        shards,
        Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
        p,
    )
    .expect("open persistent store")
}

fn recovered_persistent(shards: usize, p: &PersistenceConfig) -> ShardedRusKey {
    ShardedRusKey::recover_persistent(
        big_buffer_cfg(),
        shards,
        Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
        p,
    )
    .expect("recover persistent store")
}

/// Entries held by every run a shard's manifest currently records.
fn manifest_entries(db: &ShardedRusKey, shard: usize) -> u64 {
    db.shard(shard)
        .manifest()
        .expect("persistent shard has a manifest")
        .state()
        .levels
        .iter()
        .flat_map(|l| l.sealed.iter().chain(l.active.iter()))
        .map(|r| r.entry_count)
        .sum()
}

/// Acceptance (ISSUE 5): at every manifest crash point and `N ∈ {1, 2}`,
/// recovery folds the longest consistent prefix of the manifest, never
/// references missing pages, and loses no acknowledged write — a flush
/// whose manifest edit died leaves its records covered by the (never
/// truncated) WAL instead.
///
/// The scenario isolates the manifest: phase 1 is flushed everywhere
/// (runs recorded durably), phase 2 is group-committed (WAL-acknowledged)
/// and then shard 0 *flushes* with a crash armed at the chosen point —
/// so the flush's data pages are written, and the crash decides whether
/// the structural edit survives.
#[test]
fn manifest_crash_points_recover_the_longest_consistent_prefix() {
    const PHASE1: u64 = 40;
    const PHASE2: u64 = 40;
    for shards in [1usize, 2] {
        for point in [
            ManifestCrashPoint::PreCommit,
            ManifestCrashPoint::MidCommit,
            ManifestCrashPoint::PostCommit,
        ] {
            let root = persist_root("matrix");
            let p = persist_cfg(&root, 0);
            let mut db = persistent_store(shards, &p);

            // Phase 1: flushed on every shard — runs + manifest durable.
            for i in 0..PHASE1 {
                db.put(key(i), val(i));
            }
            db.group_commit();
            for s in 0..shards {
                db.shard_mut(s).flush();
            }
            let phase1_shard0 = manifest_entries(&db, 0);
            assert!(phase1_shard0 > 0, "phase 1 must land runs on shard 0");

            // Phase 2: acknowledged by the barrier, then shard 0 flushes
            // into the armed crash point.
            for i in PHASE1..PHASE1 + PHASE2 {
                db.put(key(i), val(i));
            }
            db.group_commit();
            let phase2_shard0 = (PHASE1..PHASE1 + PHASE2)
                .filter(|&i| shard_for_key(&key(i), shards) == 0)
                .count() as u64;
            db.shard_mut(0)
                .manifest_mut()
                .expect("persistent shard has a manifest")
                .arm_crash(point, 0);
            db.shard_mut(0).flush();
            assert!(
                db.crashed(),
                "shards={shards} point={point:?}: the armed crash never fired"
            );
            drop(db); // process death: in-memory structures die

            let rec = recovered_persistent(shards, &p);
            // The fold: append-time crashes roll shard 0's structure back
            // to phase 1 (the flush's batch was lost or torn away as a
            // unit); PostCommit keeps the merged phase-1+2 run. Recovery
            // succeeding at all proves no missing pages were referenced —
            // every recorded run was rebuilt by reading its pages back.
            let expect_entries = match point {
                ManifestCrashPoint::PreCommit | ManifestCrashPoint::MidCommit => phase1_shard0,
                _ => phase1_shard0 + phase2_shard0,
            };
            assert_eq!(
                manifest_entries(&rec, 0),
                expect_entries,
                "shards={shards} point={point:?}: wrong manifest prefix"
            );
            // No acknowledged write is lost at *any* point: the crashed
            // flush skipped the WAL truncation, so whatever the manifest
            // batch misses is still in the log (and a batch that did
            // commit tolerates the redundant WAL replay — same seq, same
            // values).
            let mut rec = rec;
            for i in 0..PHASE1 + PHASE2 {
                assert_eq!(
                    rec.get(&key(i)).as_deref(),
                    Some(val(i).as_slice()),
                    "shards={shards} point={point:?}: acknowledged key {i} lost"
                );
            }
            // And the recovered store still accepts writes + restarts.
            rec.put(key(9999), val(9999));
            rec.group_commit();
            drop(rec);
            let mut rec2 = recovered_persistent(shards, &p);
            assert_eq!(rec2.get(&key(9999)).as_deref(), Some(val(9999).as_slice()));
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}

/// Acceptance (ISSUE 7): the manifest crash matrix holds with a
/// *background merge in flight*. The store runs with deferred
/// maintenance, structural steps are taken one at a time until a merge
/// is built but not yet applied, and the crash is armed so it fires on
/// the next structural commit — the in-flight merge's apply edit (or
/// the flush ahead of it). At every crash point, recovery must restore
/// every acknowledged write: append-time crashes lose the edit batch as
/// a unit (the merge's inputs stay live in the manifest and the
/// untruncated WAL covers the rest), and the recovered store must keep
/// flushing, merging, and restarting.
#[test]
fn manifest_crash_points_with_a_background_merge_in_flight() {
    const KEYS: u64 = 400;
    let bg_cfg = || {
        let mut cfg = RusKeyConfig::scaled_default();
        cfg.lsm.buffer_bytes = 2048;
        cfg.lsm.size_ratio = 4;
        cfg.lsm.background_maintenance = true;
        cfg.lsm.l0_stall_runs = 64;
        cfg
    };
    for point in [
        ManifestCrashPoint::PreCommit,
        ManifestCrashPoint::MidCommit,
        ManifestCrashPoint::PostCommit,
    ] {
        let root = persist_root("bgmerge");
        let p = persist_cfg(&root, 0);
        let mut db = ShardedRusKey::try_with_tuner_persistent(
            bg_cfg(),
            1,
            Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
            &p,
        )
        .expect("open persistent background store");

        for i in 0..KEYS {
            db.put(key(i), val(i));
        }
        db.group_commit();

        // Ad-hoc writes now interleave boundary maintenance on the shard
        // workers, draining debt as the load runs — so seal fresh L0
        // runs directly on the tree (same keys, same values) to leave a
        // merge for the stepping loop to catch mid-flight.
        for chunk in 0..4u64 {
            let per = KEYS / 4;
            for i in chunk * per..(chunk + 1) * per {
                db.shard_mut(0).put(key(i), val(i));
            }
            db.shard_mut(0).flush();
        }

        // Step the deferred work until a merge is built and in flight.
        let mut saw_pending = false;
        for _ in 0..200 {
            if db.shard(0).has_pending_compaction() {
                saw_pending = true;
                break;
            }
            if !db.shard_mut(0).step_maintenance() {
                break;
            }
        }
        assert!(
            saw_pending,
            "point={point:?}: the load must leave a merge in flight"
        );

        // The next structural commit dies at the chosen point.
        db.shard_mut(0)
            .manifest_mut()
            .expect("persistent shard has a manifest")
            .arm_crash(point, 0);
        for _ in 0..200 {
            if db.crashed() {
                break;
            }
            db.shard_mut(0).step_maintenance();
        }
        if !db.crashed() {
            db.shard_mut(0).flush();
        }
        assert!(db.crashed(), "point={point:?}: the armed crash never fired");
        drop(db);

        let mut rec = ShardedRusKey::recover_persistent(
            bg_cfg(),
            1,
            Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
            &p,
        )
        .expect("recover persistent background store");
        for i in 0..KEYS {
            assert_eq!(
                rec.get(&key(i)).as_deref(),
                Some(val(i).as_slice()),
                "point={point:?}: acknowledged key {i} lost with a merge in flight"
            );
        }
        // The recovered store keeps operating: writes, deferred
        // maintenance to quiescence, and another restart.
        rec.put(key(9999), val(9999));
        rec.group_commit();
        while rec.shard_mut(0).step_maintenance() {}
        assert_eq!(rec.get(&key(9999)).as_deref(), Some(val(9999).as_slice()));
        drop(rec);
        let mut rec2 = ShardedRusKey::recover_persistent(
            bg_cfg(),
            1,
            Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
            &p,
        )
        .expect("second recovery");
        assert_eq!(
            rec2.get(&key(9999)).as_deref(),
            Some(val(9999).as_slice()),
            "point={point:?}: post-recovery write lost across restart"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A crash in the middle of a manifest *checkpoint* (the log-compaction
/// rewrite) leaves the previous log authoritative: the torn temporary
/// file is ignored and cleaned up, and nothing is lost — the batch that
/// triggered the auto-checkpoint was already durable in the old log.
#[test]
fn manifest_checkpoint_crash_keeps_the_old_log_authoritative() {
    let root = persist_root("ckpt");
    // checkpoint_every = 1: every commit triggers a checkpoint rewrite.
    let p = persist_cfg(&root, 1);
    let mut db = persistent_store(1, &p);

    for i in 0..30u64 {
        db.put(key(i), val(i));
    }
    db.group_commit();
    db.shard_mut(0).flush(); // healthy commit + checkpoint
    assert!(
        db.shard(0).manifest().unwrap().checkpoints() >= 1,
        "the cadence must have checkpointed"
    );

    for i in 30..60u64 {
        db.put(key(i), val(i));
    }
    db.group_commit();
    db.shard_mut(0)
        .manifest_mut()
        .unwrap()
        .arm_crash(ManifestCrashPoint::MidCheckpoint, 0);
    db.shard_mut(0).flush(); // batch commits, then the checkpoint tears
    assert!(db.crashed(), "the mid-checkpoint crash never fired");
    drop(db);

    let mut rec = recovered_persistent(1, &p);
    // The appended batch preceded the torn checkpoint, so the full
    // structure (both flushes) survives in the old log.
    assert_eq!(manifest_entries(&rec, 0), 60);
    for i in 0..60u64 {
        assert_eq!(
            rec.get(&key(i)).as_deref(),
            Some(val(i).as_slice()),
            "key {i} lost across the checkpoint crash"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// An externally torn manifest tail (bytes chopped off the file, not a
/// crash-point simulation) still recovers: the half-written batch
/// vanishes as a unit and the store rolls back to the previous flush,
/// with the WAL tail covering everything after it.
#[test]
fn externally_torn_manifest_tail_recovers_the_previous_flush() {
    let root = persist_root("torn");
    let p = persist_cfg(&root, 0);
    {
        let mut db = persistent_store(1, &p);
        for i in 0..25u64 {
            db.put(key(i), val(i));
        }
        db.group_commit();
        db.shard_mut(0).flush();
        // Unflushed tail, synced by the barrier: lives in the WAL only.
        for i in 25..35u64 {
            db.put(key(i), val(i));
        }
        db.group_commit();
    }
    // Chop bytes off the manifest: the flush's batch is torn away.
    let mpath = p.manifest_path(0);
    let data = std::fs::read(&mpath).unwrap();
    std::fs::write(&mpath, &data[..data.len() - 7]).unwrap();

    let mut rec = recovered_persistent(1, &p);
    assert_eq!(
        manifest_entries(&rec, 0),
        0,
        "the torn flush batch must vanish as a unit"
    );
    // The flush truncated the WAL, so the flushed prefix is the torn
    // batch's loss — but the post-flush tail survives in the log.
    for i in 25..35u64 {
        assert_eq!(
            rec.get(&key(i)).as_deref(),
            Some(val(i).as_slice()),
            "WAL-tail key {i} lost"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

// ----------------------------------------------------------------------
// 5. Torn power cuts (storage fsync barriers)
// ----------------------------------------------------------------------

/// Acceptance (ISSUE 8 tentpole): the torn-power matrix. A power cut at
/// either storage barrier — before the extent fsync (torn data file) or
/// before the directory fsync (the extent's name vanishes wholesale) —
/// aborts the flush's manifest commit and keeps the WAL, so recovery
/// yields exactly the acknowledged prefix at `N ∈ {1, 2}`. The extent a
/// pre-commit cut orphaned is swept by recovery, and the recovered store
/// keeps serving, flushing, and restarting.
#[test]
fn torn_power_matrix_recovers_exactly_the_acknowledged_prefix() {
    const PHASE1: u64 = 40;
    const PHASE2: u64 = 40;
    for shards in [1usize, 2] {
        for point in [PowerCutPoint::ExtentUnsynced, PowerCutPoint::DirUnsynced] {
            let root = persist_root("power");
            let p = persist_cfg(&root, 0);
            let mut db = persistent_store(shards, &p);

            // Phase 1: flushed on every shard — runs durable through the
            // full three-step contract (extent fsync, dir fsync, commit).
            for i in 0..PHASE1 {
                db.put(key(i), val(i));
            }
            db.group_commit();
            for s in 0..shards {
                db.shard_mut(s).flush();
            }
            let phase1_shard0 = manifest_entries(&db, 0);
            assert!(phase1_shard0 > 0, "phase 1 must land runs on shard 0");
            let s0 = db.shard(0).stats();
            assert!(
                s0.extent_syncs >= 1 && s0.dir_syncs >= 1,
                "phase 1 flush must exercise both fsync barriers \
                 (extent_syncs={}, dir_syncs={})",
                s0.extent_syncs,
                s0.dir_syncs
            );

            // Phase 2: acknowledged by the barrier, then shard 0 flushes
            // into the armed power cut.
            for i in PHASE1..PHASE1 + PHASE2 {
                db.put(key(i), val(i));
            }
            db.group_commit();
            db.shard(0).storage().arm_power_cut(point, 0);
            db.shard_mut(0).flush();
            assert!(
                db.shard(0).power_failed(),
                "shards={shards} point={point:?}: the armed cut never fired"
            );
            assert!(db.crashed(), "a power-failed shard must crash the store");
            drop(db); // power loss: in-memory structures die

            let rec = recovered_persistent(shards, &p);
            // The flush's batch never committed, so shard 0's structure
            // rolls back to phase 1 — and recovery rebuilding every
            // recorded run proves the rollback references no torn or
            // unlinked pages.
            assert_eq!(
                manifest_entries(&rec, 0),
                phase1_shard0,
                "shards={shards} point={point:?}: wrong manifest prefix"
            );
            // ExtentUnsynced leaves the torn extent file on disk for the
            // sweep; DirUnsynced unlinked it at the cut, so there is
            // nothing left to collect.
            let orphans = rec.shard(0).orphans_collected();
            match point {
                PowerCutPoint::ExtentUnsynced => assert!(
                    orphans >= 1,
                    "shards={shards}: the torn extent must be swept (got {orphans})"
                ),
                PowerCutPoint::DirUnsynced => assert_eq!(
                    orphans, 0,
                    "shards={shards}: the unlinked extent cannot reappear"
                ),
            }
            // No acknowledged write is lost: the cut aborted the WAL
            // truncation, so the dead flush's records replay from the log.
            let mut rec = rec;
            for i in 0..PHASE1 + PHASE2 {
                assert_eq!(
                    rec.get(&key(i)).as_deref(),
                    Some(val(i).as_slice()),
                    "shards={shards} point={point:?}: acknowledged key {i} lost"
                );
            }
            // Safe id reuse: the recovered store flushes fresh extents
            // (ids re-issued above the swept range) and restarts clean.
            rec.put(key(9999), val(9999));
            rec.group_commit();
            rec.shard_mut(0).flush();
            assert!(!rec.crashed(), "the recovered store must flush cleanly");
            drop(rec);
            let mut rec2 = recovered_persistent(shards, &p);
            assert_eq!(rec2.get(&key(9999)).as_deref(), Some(val(9999).as_slice()));
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}

/// Acceptance (ISSUE 8): recovery sweeps extent files that no manifest
/// references — planted here as a stray file simulating an extent whose
/// creating flush died before its commit — and re-issues ids safely
/// afterwards: a second incarnation must not collide with anything the
/// sweep removed.
#[test]
fn orphaned_extent_files_are_collected_and_their_ids_safely_reused() {
    let root = persist_root("orphan");
    let p = persist_cfg(&root, 0);
    {
        let mut db = persistent_store(1, &p);
        for i in 0..30u64 {
            db.put(key(i), val(i));
        }
        db.group_commit();
        db.shard_mut(0).flush();
    }
    // Plant a stray extent file far above the live id range: the debris
    // of a crashed pre-commit flush.
    let stray = p.data_dir(0).join("extent-00000099.run");
    std::fs::write(&stray, b"torn page debris").unwrap();

    let mut rec = recovered_persistent(1, &p);
    assert_eq!(
        rec.shard(0).orphans_collected(),
        1,
        "the planted orphan must be swept"
    );
    assert!(!stray.exists(), "the stray file must be removed from disk");
    for i in 0..30u64 {
        assert_eq!(
            rec.get(&key(i)).as_deref(),
            Some(val(i).as_slice()),
            "live key {i} lost to the sweep"
        );
    }
    // Safe reuse: new flushes allocate ids above the retained maximum —
    // not above the swept stray — and the store restarts clean on them.
    for i in 30..60u64 {
        rec.put(key(i), val(i));
    }
    rec.group_commit();
    rec.shard_mut(0).flush();
    drop(rec);
    let mut rec2 = recovered_persistent(1, &p);
    assert_eq!(
        rec2.shard(0).orphans_collected(),
        0,
        "nothing left to sweep"
    );
    for i in 0..60u64 {
        assert_eq!(
            rec2.get(&key(i)).as_deref(),
            Some(val(i).as_slice()),
            "key {i} lost after id reuse"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// A power cut that fires after a checkpoint's `rename(2)` but before the
/// directory fsync makes it durable: the old manifest bytes come back on
/// restart. The batch that triggered the checkpoint was appended to the
/// old log *before* the rewrite, so nothing is lost — the restored log
/// carries the full structure.
#[test]
fn checkpoint_rename_without_dir_fsync_rolls_back_to_the_old_log() {
    let root = persist_root("predirsync");
    // checkpoint_every = 1: every commit triggers a checkpoint rewrite.
    let p = persist_cfg(&root, 1);
    let mut db = persistent_store(1, &p);

    for i in 0..30u64 {
        db.put(key(i), val(i));
    }
    db.group_commit();
    db.shard_mut(0).flush(); // healthy commit + checkpoint

    for i in 30..60u64 {
        db.put(key(i), val(i));
    }
    db.group_commit();
    db.shard_mut(0)
        .manifest_mut()
        .unwrap()
        .arm_crash(ManifestCrashPoint::PreDirSync, 0);
    db.shard_mut(0).flush(); // batch appends, rename tears back
    assert!(db.crashed(), "the pre-dir-sync cut never fired");
    drop(db);

    let mut rec = recovered_persistent(1, &p);
    // The rolled-back bytes are the old log *including* the appended
    // batch, so the full structure survives.
    assert_eq!(manifest_entries(&rec, 0), 60);
    for i in 0..60u64 {
        assert_eq!(
            rec.get(&key(i)).as_deref(),
            Some(val(i).as_slice()),
            "key {i} lost across the torn checkpoint rename"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Acceptance (ISSUE 8): a *missing* extent that the manifest does
/// reference — deleted out from under a healthy store — surfaces as a
/// typed recovery error, never a panic. (An unreferenced missing file is
/// the orphan sweep's business; a referenced one is data loss recovery
/// must report.)
#[test]
fn missing_referenced_extent_is_a_typed_recovery_error_not_a_panic() {
    let root = persist_root("missing");
    let p = persist_cfg(&root, 0);
    {
        let mut db = persistent_store(1, &p);
        for i in 0..30u64 {
            db.put(key(i), val(i));
        }
        db.group_commit();
        db.shard_mut(0).flush();
    }
    // Delete every live extent file: the manifest still records the runs.
    let mut removed = 0usize;
    for entry in std::fs::read_dir(p.data_dir(0)).unwrap() {
        let path = entry.unwrap().path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("extent-"))
        {
            std::fs::remove_file(&path).unwrap();
            removed += 1;
        }
    }
    assert!(removed > 0, "the flush must have persisted extent files");

    let err = match ShardedRusKey::recover_persistent(
        big_buffer_cfg(),
        1,
        Box::new(ruskey_repro::ruskey::tuner::NoOpTuner),
        &p,
    ) {
        Ok(_) => panic!("recovery over missing referenced extents must fail"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("missing"),
        "the error must name the missing extent, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
