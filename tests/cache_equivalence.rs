//! Cache-transparency harness for the sharded block cache.
//!
//! The block cache sits between each shard's `FlsmTree` and its
//! `FileDisk`, so the one property that matters is *transparency*: a
//! cache-enabled store must be get/scan-bit-identical to a cache-disabled
//! store executing the same schedule — through memtable flushes,
//! compaction cascades (which free extents the cache must invalidate
//! under the two-log contract), and a full `recover_persistent` restart
//! (where freed extent ids can be reallocated, so a stale cached page
//! would serve another run's data).
//!
//! Two suites:
//!
//! 1. **Mission proptest**: random balanced missions at `N ∈ {1, 2, 4}`
//!    run against two persistent stores differing only in `cache_pages`
//!    (a deliberately tiny cache, so hits, misses, evictions, and
//!    invalidations all occur). Gets and scans are compared after every
//!    mission, after a restart of both stores, and after a post-restart
//!    mission.
//! 2. **Deterministic invalidation scenario**: overwrite-heavy rounds
//!    with forced flushes make compaction free and reallocate extents
//!    while lookups keep the freed pages cache-hot; any missed
//!    invalidation surfaces as a stale read.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use proptest::prelude::*;

use ruskey_repro::ruskey::db::RusKeyConfig;
use ruskey_repro::ruskey::sharded::{PersistenceConfig, ShardedRusKey};
use ruskey_repro::ruskey::tuner::NoOpTuner;
use ruskey_repro::storage::CostModel;
use ruskey_repro::workload::{encode_key, OpGenerator, OpMix, Operation, WorkloadSpec};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn store_root(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ruskey-cacheq-{tag}-{}-{n}", std::process::id()))
}

/// `cache_pages = 6` is deliberately tiny: every scenario exercises
/// eviction and reuse, not just warm hits.
fn pcfg(root: &PathBuf, cache_pages: usize) -> PersistenceConfig {
    let mut p = PersistenceConfig::new(root);
    p.page_size = 512;
    p.cost = CostModel::FREE;
    p.checkpoint_every = 8;
    p.cache_pages = cache_pages;
    p
}

/// A small buffer so missions flush and compact runs — the mutations the
/// cache must stay coherent through.
fn small_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 2048;
    cfg.lsm.size_ratio = 4;
    cfg
}

fn open(shards: usize, p: &PersistenceConfig) -> ShardedRusKey {
    ShardedRusKey::try_with_tuner_persistent(small_cfg(), shards, Box::new(NoOpTuner), p)
        .expect("open persistent store")
}

fn recover(shards: usize, p: &PersistenceConfig) -> ShardedRusKey {
    ShardedRusKey::recover_persistent(small_cfg(), shards, Box::new(NoOpTuner), p)
        .expect("recover persistent store")
}

fn key(i: u64) -> Bytes {
    encode_key(i, 16)
}

const KEYS: u64 = 240;

/// Every get over the key space plus a full and a bounded scan must be
/// bit-identical between the cached and uncached stores.
fn assert_equivalent(cached: &mut ShardedRusKey, uncached: &mut ShardedRusKey, when: &str) {
    for i in 0..KEYS + 2 {
        assert_eq!(
            cached.get(&key(i)),
            uncached.get(&key(i)),
            "{when}: get({i}) diverged between cached and uncached stores"
        );
    }
    let lo = key(0);
    let hi = key(KEYS + 2);
    assert_eq!(
        cached.scan(&lo, &hi, usize::MAX),
        uncached.scan(&lo, &hi, usize::MAX),
        "{when}: full scan diverged"
    );
    assert_eq!(
        cached.scan(&key(40), &key(160), 29),
        uncached.scan(&key(40), &key(160), 29),
        "{when}: bounded scan diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// ISSUE satellite 3: random balanced missions at `N ∈ {1, 2, 4}`;
    /// the cache-enabled store stays bit-identical to the cache-disabled
    /// store through flushes, compactions, and a restart of both.
    #[test]
    fn cached_store_is_bit_identical_to_uncached(
        seed in any::<u64>(),
        missions in 2usize..5,
        shard_sel in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shard_sel];
        let root_c = store_root("prop-on");
        let root_u = store_root("prop-off");
        let p_c = pcfg(&root_c, 6);
        let p_u = pcfg(&root_u, 0);
        let mut cached = open(shards, &p_c);
        let mut uncached = open(shards, &p_u);

        let spec = WorkloadSpec {
            key_space: KEYS,
            key_len: 16,
            value_len: 48,
            ..WorkloadSpec::scaled_default(KEYS)
        }
        .with_mix(OpMix::balanced());
        let mut g = OpGenerator::new(spec, seed);
        for m in 0..missions {
            let ops: Vec<Operation> = g.take_ops(400);
            cached.run_mission(&ops);
            uncached.run_mission(&ops);
            assert_equivalent(&mut cached, &mut uncached, &format!("mission {m}"));
        }
        prop_assert!(
            cached.stats().flushes > 0,
            "the schedule must flush runs to disk"
        );
        prop_assert!(
            cached.stats().cache_hits > 0,
            "the cached store must actually serve from its cache"
        );
        prop_assert_eq!(
            uncached.stats().cache_hits, 0,
            "cache_pages = 0 must disable caching entirely"
        );

        // Restart both stores; the recovered cached store starts cold
        // but must stay identical (stale pages after extent reuse would
        // surface here or in the post-restart mission).
        cached.group_commit();
        uncached.group_commit();
        drop(cached);
        drop(uncached);
        let mut cached = recover(shards, &p_c);
        let mut uncached = recover(shards, &p_u);
        assert_equivalent(&mut cached, &mut uncached, "after restart");
        let ops: Vec<Operation> = g.take_ops(400);
        cached.run_mission(&ops);
        uncached.run_mission(&ops);
        assert_equivalent(&mut cached, &mut uncached, "post-restart mission");

        let _ = std::fs::remove_dir_all(&root_c);
        let _ = std::fs::remove_dir_all(&root_u);
    }
}

/// Deterministic invalidation scenario: keep a small key space cache-hot
/// while overwrite rounds force flushes and compactions that free and
/// reallocate extents. A cache that misses an invalidation serves a
/// freed (or reused) page and diverges.
#[test]
fn compaction_invalidation_never_serves_stale_pages() {
    for shards in [1usize, 2, 4] {
        let root_c = store_root("inval-on");
        let root_u = store_root("inval-off");
        let p_c = pcfg(&root_c, 6);
        let p_u = pcfg(&root_u, 0);
        let mut cached = open(shards, &p_c);
        let mut uncached = open(shards, &p_u);

        for round in 0..8u64 {
            // Overwrites supersede whole runs, so compaction frees their
            // extents; lookups in between keep those pages cached.
            let ops: Vec<Operation> = (0..KEYS)
                .map(|i| Operation::Put {
                    key: key(i),
                    value: Bytes::from(format!("r{round}-v{i:04}")),
                })
                .chain((0..KEYS).step_by(3).map(|i| Operation::Get { key: key(i) }))
                .collect();
            cached.run_mission(&ops);
            uncached.run_mission(&ops);
            for s in 0..shards {
                cached.shard_mut(s).flush();
                uncached.shard_mut(s).flush();
            }
            assert_equivalent(&mut cached, &mut uncached, &format!("round {round}"));
        }
        assert!(
            cached.stats().cache_hits > 0 && cached.stats().cache_evictions > 0,
            "{shards} shards: the scenario must exercise hits and evictions \
             (hits {}, evictions {})",
            cached.stats().cache_hits,
            cached.stats().cache_evictions
        );

        // Restart: recovery reopens the FileDisk (extent ids continue
        // from the directory scan, so freed ids can be reallocated) and
        // the recovered cached store must still be identical.
        cached.group_commit();
        uncached.group_commit();
        drop(cached);
        drop(uncached);
        let mut cached = recover(shards, &p_c);
        let mut uncached = recover(shards, &p_u);
        assert_equivalent(&mut cached, &mut uncached, "after restart");

        let _ = std::fs::remove_dir_all(&root_c);
        let _ = std::fs::remove_dir_all(&root_u);
    }
}
