//! Property-based tests (proptest) over the core data structures and
//! cross-crate invariants.

use std::collections::BTreeMap;

use bytes::Bytes;
use proptest::prelude::*;

use ruskey_repro::analysis::propagation::propagate_rounded;
use ruskey_repro::analysis::TransitionScenario;
use ruskey_repro::lsm::compaction::merge_sorted;
use ruskey_repro::lsm::run::RunBuilder;
use ruskey_repro::lsm::{FlsmTree, KvEntry, LsmConfig, TransitionStrategy};
use ruskey_repro::storage::{CostModel, SimulatedDisk, Storage};

/// An operation in the random-interleaving model test.
#[derive(Debug, Clone)]
enum ModelOp {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    SetPolicy(u8),
    Flush,
}

fn model_op() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| ModelOp::Put(k % 512, v)),
        1 => any::<u16>().prop_map(|k| ModelOp::Delete(k % 512)),
        3 => any::<u16>().prop_map(|k| ModelOp::Get(k % 512)),
        1 => any::<u8>().prop_map(|k| ModelOp::SetPolicy(k % 4 + 1)),
        1 => Just(ModelOp::Flush),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::copy_from_slice(&(k as u64).to_be_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The FLSM-tree behaves exactly like a BTreeMap under arbitrary
    /// interleavings of puts/deletes/gets/policy-changes, for every
    /// transition strategy.
    #[test]
    fn flsm_equals_btreemap(ops in prop::collection::vec(model_op(), 1..400),
                            strategy_idx in 0usize..3) {
        let strategy = TransitionStrategy::ALL[strategy_idx];
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            transition: strategy,
            ..LsmConfig::scaled_default()
        };
        let mut tree = FlsmTree::new(cfg, disk);
        let mut model: BTreeMap<u16, u8> = BTreeMap::new();
        for op in ops {
            match op {
                ModelOp::Put(k, v) => {
                    model.insert(k, v);
                    tree.put(key(k), vec![v]);
                }
                ModelOp::Delete(k) => {
                    model.remove(&k);
                    tree.delete(key(k));
                }
                ModelOp::Get(k) => {
                    let got = tree.get(&key(k));
                    let want = model.get(&k).map(|v| vec![*v]);
                    prop_assert_eq!(got.as_deref(), want.as_deref());
                }
                ModelOp::SetPolicy(p) => {
                    for lvl in 0..tree.level_count() {
                        tree.set_policy(lvl, p as u32);
                    }
                }
                ModelOp::Flush => tree.flush(),
            }
        }
        // Full verification sweep at the end.
        for (k, v) in &model {
            let want = vec![*v];
            let got = tree.get(&key(*k));
            prop_assert_eq!(got.as_deref(), Some(want.as_slice()));
        }
    }

    /// Run round-trip: building a run from arbitrary sorted entries and
    /// iterating it returns exactly the input.
    #[test]
    fn run_roundtrip(keys in prop::collection::btree_set(any::<u32>(), 1..200),
                     vlen in 0usize..64) {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let mut builder = RunBuilder::new(1, 256, 8.0);
        let entries: Vec<KvEntry> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| KvEntry::put(
                Bytes::copy_from_slice(&(*k as u64).to_be_bytes()),
                Bytes::from(vec![(i % 256) as u8; vlen]),
                i as u64 + 1,
            ))
            .collect();
        for e in &entries {
            builder.push(e.clone());
        }
        let run = builder.finish(disk.as_ref(), u64::MAX).unwrap();
        let got: Vec<KvEntry> = run.iter(disk.clone() as std::sync::Arc<dyn Storage>).collect();
        prop_assert_eq!(got, entries);
    }

    /// Merging preserves the latest version of every key and never invents
    /// keys.
    #[test]
    fn merge_latest_wins(batches in prop::collection::vec(
        prop::collection::btree_map(any::<u16>(), any::<u8>(), 0..50), 1..6)) {
        let mut seq = 0u64;
        let mut latest: BTreeMap<u16, (u64, u8)> = BTreeMap::new();
        let sorted_batches: Vec<Vec<KvEntry>> = batches
            .iter()
            .map(|b| {
                b.iter()
                    .map(|(k, v)| {
                        seq += 1;
                        let e = latest.entry(*k).or_insert((seq, *v));
                        if seq >= e.0 {
                            *e = (seq, *v);
                        }
                        KvEntry::put(key(*k), vec![*v], seq)
                    })
                    .collect()
            })
            .collect();
        let merged = merge_sorted(sorted_batches, false);
        prop_assert_eq!(merged.len(), latest.len());
        for e in &merged {
            let k = u64::from_be_bytes(e.key.as_ref().try_into().unwrap()) as u16;
            let (want_seq, want_v) = latest[&k];
            prop_assert_eq!(e.seq, want_seq);
            let want = vec![want_v];
            prop_assert_eq!(e.value.as_ref(), want.as_slice());
        }
    }

    /// Lemma 5.1 propagation: policies stay in [1, T] and are
    /// non-increasing whenever the premise K2 <= K1 holds.
    #[test]
    fn propagation_invariants(k1 in 1u32..=10, k2 in 1u32..=10, t in 2u32..=10, levels in 1usize..10) {
        let k1c = k1.min(t);
        let k2c = k2.min(t);
        let ks = propagate_rounded(k1c, k2c, t, levels);
        prop_assert_eq!(ks.len(), levels);
        for &k in &ks {
            prop_assert!((1..=t).contains(&k));
        }
        if k2c <= k1c {
            for w in ks.windows(2) {
                prop_assert!(w[1] <= w[0], "{:?} increased", ks);
            }
        }
    }

    /// Table 2 dominance: a flexible transition's additional cost never
    /// exceeds a lazy transition's, anywhere in the parameter space.
    #[test]
    fn flexible_dominates_lazy(k_old in 1u32..=10, k_new in 1u32..=10,
                               fill in 0.0f64..1.0, gamma in 0.05f64..0.95) {
        let s = TransitionScenario {
            k_old: k_old as f64,
            k_new: k_new as f64,
            fill,
            gamma,
            ..TransitionScenario::paper_case_study()
        };
        prop_assert!(s.additional_cost_flexible() <= s.additional_cost_lazy() + 1e-9);
        prop_assert!(s.additional_cost_flexible() >= 0.0);
        prop_assert!(s.additional_cost_greedy() >= 0.0);
    }

    /// Scans agree with the reference model over arbitrary bounds.
    #[test]
    fn scan_equals_model(puts in prop::collection::btree_map(any::<u16>(), any::<u8>(), 1..120),
                         lo in any::<u16>(), span in 1u16..200) {
        let disk = SimulatedDisk::new(256, CostModel::FREE);
        let cfg = LsmConfig {
            buffer_bytes: 1024,
            size_ratio: 4,
            ..LsmConfig::scaled_default()
        };
        let mut tree = FlsmTree::new(cfg, disk);
        for (k, v) in &puts {
            tree.put(key(*k), vec![*v]);
        }
        let lo = lo % 512;
        let hi = lo.saturating_add(span);
        let got = tree.scan(&key(lo), &key(hi), usize::MAX);
        let want: Vec<(u16, u8)> = puts.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got.len(), want.len());
        for ((gk, gv), (wk, wv)) in got.iter().zip(&want) {
            prop_assert_eq!(u64::from_be_bytes(gk.as_ref().try_into().unwrap()) as u16, *wk);
            let want = vec![*wv];
            prop_assert_eq!(gv.as_ref(), want.as_slice());
        }
    }
}
