//! Per-shard time domains: the exactness property the sharded engine's
//! accounting now guarantees.
//!
//! Each shard of a [`ShardedRusKey`] runs on its own storage view with a
//! private virtual clock, so per-level `lookup_ns`/`compact_ns` (and the
//! per-shard I/O counters) must equal — *exactly*, not approximately —
//! the values of an equivalent single-shard run over that shard's key
//! partition, even while `N` shards execute concurrently. The store-level
//! compositions (device-busy = sum over domains, mission wall = max over
//! domains) must behave like the monoids they claim to be.

use std::sync::Arc;

use proptest::prelude::*;

use ruskey_repro::lsm::TreeStatsSnapshot;
use ruskey_repro::ruskey::db::RusKeyConfig;
use ruskey_repro::ruskey::sharded::ShardedRusKey;
use ruskey_repro::storage::{CostModel, SimulatedDisk, Storage};
use ruskey_repro::workload::routing::{partition_ops, shard_for_key};
use ruskey_repro::workload::{bulk_load_pairs, OpGenerator, OpMix, Operation, WorkloadSpec};

fn small_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 4096;
    cfg.lsm.size_ratio = 4;
    cfg
}

fn disk() -> Arc<dyn Storage> {
    SimulatedDisk::new(512, CostModel::NVME)
}

fn mixed_spec(key_space: u64) -> WorkloadSpec {
    WorkloadSpec {
        key_space,
        key_len: 16,
        value_len: 48,
        ..WorkloadSpec::scaled_default(key_space)
    }
    .with_mix(OpMix {
        lookup: 0.35,
        update: 0.4,
        delete: 0.1,
        scan: 0.15,
    })
}

/// Acceptance (ISSUE 2): at `N ∈ {2, 4}`, every shard's statistics after
/// parallel missions — including the time attribution `lookup_ns` and
/// `compact_ns` — are bit-identical to a single-shard store replaying that
/// shard's lane of the same missions on its key partition. Before time
/// domains, concurrent siblings' charges leaked into these windows.
#[test]
fn per_shard_times_equal_single_threaded_run() {
    for &n in &[2usize, 4] {
        let pairs = bulk_load_pairs(2000, 16, 48, 7);
        let mut sharded = ShardedRusKey::untuned(small_cfg(), n, disk());
        sharded.bulk_load(pairs.clone());

        let mut g = OpGenerator::new(mixed_spec(2000), 9);
        let missions: Vec<Vec<Operation>> = (0..4).map(|_| g.take_ops(300)).collect();
        let reports: Vec<_> = missions
            .iter()
            .map(|ops| sharded.run_mission(ops))
            .collect();
        assert_eq!(
            sharded.last_parallelism(),
            n,
            "missions must actually run in parallel for the test to mean anything"
        );

        for shard in 0..n {
            // Equivalent single-threaded run: the shard's key partition,
            // then the shard's lane of every mission (scans broadcast, so
            // each lane contains them all).
            let mut single = ShardedRusKey::untuned(small_cfg(), 1, disk());
            single.bulk_load(
                pairs
                    .iter()
                    .filter(|(k, _)| shard_for_key(k, n) == shard)
                    .cloned()
                    .collect(),
            );
            for ops in &missions {
                let lane: Vec<Operation> = partition_ops(ops, n)[shard]
                    .iter()
                    .map(|op| (*op).clone())
                    .collect();
                single.run_mission(&lane);
            }
            let parallel_stats = sharded.shard(shard).stats();
            let solo_stats = single.shard(0).stats();
            assert_eq!(
                parallel_stats, solo_stats,
                "shards={n} shard={shard}: parallel per-shard accounting \
                 diverged from the single-threaded run"
            );
            // Spell out the headline fields of the acceptance criterion.
            for (lvl, (p, s)) in parallel_stats
                .levels
                .iter()
                .zip(&solo_stats.levels)
                .enumerate()
            {
                assert_eq!(p.lookup_ns, s.lookup_ns, "shard {shard} level {lvl}");
                assert_eq!(p.compact_ns, s.compact_ns, "shard {shard} level {lvl}");
            }
        }

        // The merged mission reports composed correctly: wall never
        // exceeds device-busy, and both are populated.
        for r in &reports {
            assert!(r.end_to_end_ns > 0);
            assert!(r.end_to_end_ns <= r.device_busy_ns);
        }
    }
}

/// The merged snapshot is assembled from exact per-shard parts: its
/// per-level times are the sums of the shards' (individually exact)
/// times, its busy time the sum and its wall time the max of the domains.
#[test]
fn merged_snapshot_composes_exact_shard_parts() {
    let n = 4;
    let mut sharded = ShardedRusKey::untuned(small_cfg(), n, disk());
    sharded.bulk_load(bulk_load_pairs(2000, 16, 48, 11));
    let mut g = OpGenerator::new(mixed_spec(2000), 17);
    for _ in 0..3 {
        sharded.run_mission(&g.take_ops(400));
    }
    let per_shard = sharded.shard_snapshots();
    let merged = sharded.stats();
    assert_eq!(
        merged.busy_ns,
        per_shard.iter().map(|s| s.busy_ns).sum::<u64>()
    );
    assert_eq!(
        merged.clock_ns,
        per_shard.iter().map(|s| s.clock_ns).max().unwrap()
    );
    for lvl in 0..merged.levels.len() {
        let want: u64 = per_shard
            .iter()
            .filter_map(|s| s.levels.get(lvl))
            .map(|l| l.lookup_ns + l.compact_ns)
            .sum();
        assert_eq!(merged.levels[lvl].total_ns(), want, "level {lvl}");
    }
}

/// Ad-hoc operations run on the shard workers with the same domain
/// attribution as the mission path: after an ad-hoc stream (scans
/// fanning out to every shard, point ops routed to their owner), every
/// shard's statistics — including `lookup_ns` per level — are
/// bit-identical to a single-shard store replaying that shard's lane of
/// the same stream ad hoc. Before the workers served ad-hoc traffic,
/// scan fan-out charged the submitting thread's view and broke this.
#[test]
fn adhoc_ops_attribute_time_to_their_own_domains() {
    for &n in &[2usize, 4] {
        let pairs = bulk_load_pairs(2000, 16, 48, 7);
        let mut sharded = ShardedRusKey::untuned(small_cfg(), n, disk());
        sharded.bulk_load(pairs.clone());

        let mut g = OpGenerator::new(mixed_spec(2000), 23);
        let ops = g.take_ops(1200);
        for op in &ops {
            apply_adhoc(&mut sharded, op);
        }

        for shard in 0..n {
            let mut single = ShardedRusKey::untuned(small_cfg(), 1, disk());
            single.bulk_load(
                pairs
                    .iter()
                    .filter(|(k, _)| shard_for_key(k, n) == shard)
                    .cloned()
                    .collect(),
            );
            for op in partition_ops(&ops, n)[shard].iter() {
                apply_adhoc(&mut single, op);
            }
            assert_eq!(
                sharded.shard(shard).stats(),
                single.shard(0).stats(),
                "shards={n} shard={shard}: ad-hoc per-shard accounting \
                 diverged from the single-threaded lane replay"
            );
        }
    }
}

fn apply_adhoc(db: &mut ShardedRusKey, op: &Operation) {
    match op {
        Operation::Get { key } => {
            db.get(key);
        }
        Operation::Put { key, value } => db.put(key.clone(), value.clone()),
        Operation::Delete { key } => db.delete(key.clone()),
        Operation::Scan { start, end, limit } => {
            db.scan(start, end, *limit);
        }
    }
}

fn arb_snapshot() -> impl Strategy<Value = TreeStatsSnapshot> {
    (
        (0u64..1000, 0u64..1000, 0u64..100),
        0u64..1_000_000,
        prop::collection::vec((0u64..10_000, 0u64..10_000), 0..4),
    )
        .prop_map(
            |((lookups, updates, scans), clock, levels)| TreeStatsSnapshot {
                lookups,
                updates,
                scans,
                clock_ns: clock,
                busy_ns: clock,
                levels: levels
                    .into_iter()
                    .map(
                        |(lookup_ns, compact_ns)| ruskey_repro::lsm::LevelStatsSnapshot {
                            lookup_ns,
                            compact_ns,
                            ..Default::default()
                        },
                    )
                    .collect(),
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The sum/max domain composition is associative and
    /// permutation-invariant: any merge order of any shard ordering
    /// yields the same store-wide snapshot.
    #[test]
    fn composition_is_associative_and_permutation_invariant(
        snaps in prop::collection::vec(arb_snapshot(), 1..6),
        rotation in 0usize..6,
    ) {
        // Associativity: left fold == right fold.
        let left = TreeStatsSnapshot::merge_all(&snaps);
        let right = snaps
            .iter()
            .rev()
            .fold(TreeStatsSnapshot::default(), |acc, s| s.merge(&acc));
        prop_assert_eq!(&left, &right);

        // Permutation invariance: rotations and reversal agree.
        let k = rotation % snaps.len();
        let rotated: Vec<&TreeStatsSnapshot> =
            snaps[k..].iter().chain(snaps[..k].iter()).collect();
        prop_assert_eq!(&left, &TreeStatsSnapshot::merge_all(rotated));
        let reversed: Vec<&TreeStatsSnapshot> = snaps.iter().rev().collect();
        prop_assert_eq!(&left, &TreeStatsSnapshot::merge_all(reversed));

        // The two compositions do what they say on the tin.
        prop_assert_eq!(left.busy_ns, snaps.iter().map(|s| s.busy_ns).sum::<u64>());
        prop_assert_eq!(
            left.clock_ns,
            snaps.iter().map(|s| s.clock_ns).max().unwrap_or(0)
        );
    }
}
