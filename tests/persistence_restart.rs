//! Restart-equivalence harness for full-store persistence.
//!
//! Three suites pin the persistence contract of the manifest + `FileDisk`
//! recovery path (the layer above the WAL-only crash matrix of
//! `tests/crash_recovery.rs`):
//!
//! 1. **Restart equivalence**: a persistent [`ShardedRusKey`] at
//!    `N ∈ {1, 2, 4}` runs missions that flush and compact runs to disk,
//!    is dropped (losing every in-memory structure), and is recovered;
//!    every get over the whole key space and every scan must be
//!    bit-identical to the uninterrupted store — flushed runs included,
//!    not just the WAL tail — and the recovered store must keep serving
//!    (and survive a second restart).
//! 2. **Schedule proptest**: random put/delete/flush schedules with
//!    mid-run flush and compaction boundaries on random shard counts;
//!    the recovered store must be get/scan-identical to a fresh
//!    (simulated-disk) store executing the same schedule.
//! 3. **Manifest replay fuzz**: random valid edit histories corrupted by
//!    bit flips, truncation, and appended garbage never panic recovery,
//!    which must yield deterministically one of the committed-batch
//!    prefix states (batches are atomic — no half-applied mutation can
//!    ever fold).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use proptest::prelude::*;

use ruskey_repro::lsm::manifest::{Manifest, ManifestEdit, ManifestState, RunRecord};
use ruskey_repro::ruskey::db::RusKeyConfig;
use ruskey_repro::ruskey::sharded::{PersistenceConfig, ShardedRusKey};
use ruskey_repro::ruskey::tuner::NoOpTuner;
use ruskey_repro::storage::CostModel;
use ruskey_repro::workload::{encode_key, OpGenerator, OpMix, WorkloadSpec};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique store root per scenario (parallel tests must not share).
fn store_root(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ruskey-persist-{tag}-{}-{n}", std::process::id()))
}

fn pcfg(root: &PathBuf) -> PersistenceConfig {
    let mut p = PersistenceConfig::new(root);
    p.page_size = 512;
    p.cost = CostModel::FREE;
    // An aggressive checkpoint cadence so the scenarios exercise live
    // log compaction (and recovery from checkpointed, multi-level
    // manifests), not just plain append-only histories.
    p.checkpoint_every = 8;
    p
}

/// A small buffer so the scenarios flush and compact runs to disk — the
/// structure the manifest (not the WAL) must carry across the restart.
fn small_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 4096;
    cfg.lsm.size_ratio = 4;
    cfg
}

fn persistent_store(shards: usize, p: &PersistenceConfig) -> ShardedRusKey {
    ShardedRusKey::try_with_tuner_persistent(small_cfg(), shards, Box::new(NoOpTuner), p)
        .expect("open persistent store")
}

fn recovered_store(shards: usize, p: &PersistenceConfig) -> ShardedRusKey {
    ShardedRusKey::recover_persistent(small_cfg(), shards, Box::new(NoOpTuner), p)
        .expect("recover persistent store")
}

fn key(i: u64) -> Bytes {
    encode_key(i, 16)
}

// ----------------------------------------------------------------------
// 1. Restart equivalence
// ----------------------------------------------------------------------

/// Acceptance (ISSUE 5): a `FileDisk`-backed store at `N ∈ {1, 2, 4}`
/// survives drop + recover with its flushed runs intact — every get and
/// scan bit-identical to the uninterrupted store.
#[test]
fn restart_equivalence_at_every_shard_count() {
    const KEYS: u64 = 800;
    for shards in [1usize, 2, 4] {
        let root = store_root("equiv");
        let p = pcfg(&root);
        let mut db = persistent_store(shards, &p);

        // Mission-driven mixed workload with flush/compaction boundaries
        // mid-run, then an unflushed tail synced only by group commit.
        let spec = WorkloadSpec {
            key_space: KEYS,
            key_len: 16,
            value_len: 64,
            ..WorkloadSpec::scaled_default(KEYS)
        }
        .with_mix(OpMix::balanced());
        let mut g = OpGenerator::new(spec, 7 + shards as u64);
        for _ in 0..6 {
            db.run_mission(&g.take_ops(250));
        }
        db.put(key(KEYS + 1), b"tail-write".as_ref());
        db.group_commit();
        assert!(
            db.stats().flushes > 0,
            "{shards} shards: the scenario must flush runs to disk"
        );

        // The uninterrupted store's answers, over the whole key space.
        let expected_gets: Vec<Option<Bytes>> = (0..KEYS + 2).map(|i| db.get(&key(i))).collect();
        let lo = key(0);
        let hi = key(KEYS + 2);
        let expected_scan = db.scan(&lo, &hi, usize::MAX);
        let expected_bounded = db.scan(&key(100), &key(300), 37);
        drop(db); // restart: memtables, runs, filters, fences all die

        let mut rec = recovered_store(shards, &p);
        assert!(
            rec.stats().runs_recovered > 0,
            "{shards} shards: recovery must rebuild runs from data pages"
        );
        for (i, want) in expected_gets.iter().enumerate() {
            assert_eq!(
                &rec.get(&key(i as u64)),
                want,
                "{shards} shards: get({i}) diverged after restart"
            );
        }
        assert_eq!(
            rec.scan(&lo, &hi, usize::MAX),
            expected_scan,
            "{shards} shards: full scan diverged after restart"
        );
        assert_eq!(
            rec.scan(&key(100), &key(300), 37),
            expected_bounded,
            "{shards} shards: bounded scan diverged after restart"
        );

        // The recovered store keeps operating — and survives a second
        // restart with the new writes intact.
        let r = rec.run_mission(&g.take_ops(250));
        assert!(r.ops >= 250);
        rec.put(key(KEYS + 3), b"post-recovery".as_ref());
        rec.group_commit();
        let expected2: Vec<Option<Bytes>> = (0..KEYS + 4).map(|i| rec.get(&key(i))).collect();
        drop(rec);
        let mut rec2 = recovered_store(shards, &p);
        for (i, want) in expected2.iter().enumerate() {
            assert_eq!(
                &rec2.get(&key(i as u64)),
                want,
                "{shards} shards: get({i}) diverged after the second restart"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

// ----------------------------------------------------------------------
// 2. Schedule proptest
// ----------------------------------------------------------------------

/// One step of the random persistent schedule.
#[derive(Debug, Clone)]
enum PersistOp {
    Put(u16, u8),
    Delete(u16),
    /// Force a memtable flush on one shard (mid-run flush/compaction
    /// boundary; the shard index is taken modulo the shard count).
    Flush(u8),
    /// A group-commit barrier (mission boundary).
    Commit,
}

fn persist_op() -> impl Strategy<Value = PersistOp> {
    prop_oneof![
        8 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| PersistOp::Put(k % 120, v)),
        2 => any::<u16>().prop_map(|k| PersistOp::Delete(k % 120)),
        1 => any::<u8>().prop_map(PersistOp::Flush),
        1 => Just(PersistOp::Commit),
    ]
}

fn apply(db: &mut ShardedRusKey, op: &PersistOp, shards: usize) {
    match *op {
        PersistOp::Put(k, v) => db.put(key(k as u64), vec![v; 16]),
        PersistOp::Delete(k) => db.delete(key(k as u64)),
        PersistOp::Flush(s) => db.shard_mut(s as usize % shards).flush(),
        PersistOp::Commit => {
            db.group_commit();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random schedules with mid-run flush/compaction boundaries: the
    /// recovered persistent store is get/scan-identical to a fresh
    /// (simulated-disk, non-durable) store executing the same schedule.
    #[test]
    fn recovered_store_equals_uninterrupted_schedule(
        ops in prop::collection::vec(persist_op(), 1..120),
        shards in 1usize..5,
    ) {
        let root = store_root("prop");
        let p = pcfg(&root);
        let mut db = persistent_store(shards, &p);
        for op in &ops {
            apply(&mut db, op, shards);
        }
        db.group_commit(); // everything acknowledged before the restart
        drop(db);

        let mut reference = ShardedRusKey::untuned(
            small_cfg(),
            shards,
            ruskey_repro::storage::SimulatedDisk::new(512, CostModel::FREE),
        );
        for op in &ops {
            apply(&mut reference, op, shards);
        }

        let mut rec = recovered_store(shards, &p);
        for k in 0u64..120 {
            prop_assert_eq!(
                rec.get(&key(k)),
                reference.get(&key(k)),
                "shards={} key={}: get diverged",
                shards, k
            );
        }
        let lo = key(0);
        let hi = key(120);
        prop_assert_eq!(
            rec.scan(&lo, &hi, usize::MAX),
            reference.scan(&lo, &hi, usize::MAX),
            "shards={}: scan diverged",
            shards
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

// ----------------------------------------------------------------------
// 3. Manifest replay fuzz
// ----------------------------------------------------------------------

/// Model used to *generate* valid edit histories: tracks enough state to
/// only emit edits the fold accepts.
#[derive(Default)]
struct EditModel {
    levels: Vec<(Vec<u64>, Option<u64>)>, // (sealed ids, active id)
    next_id: u64,
    seq: u64,
}

impl EditModel {
    /// Produces the next valid edit for an action code, or `None` when
    /// the code has no valid target (e.g. a seal with no active run).
    fn edit_for(&mut self, code: u8) -> Option<ManifestEdit> {
        let run = |id: u64| RunRecord {
            run_id: id,
            extent_id: id,
            pages: 1,
            capacity_bytes: 1024,
            entry_count: 1,
            data_bytes: 30,
            max_seq: id,
            bloom_bits_per_key: 8.0,
            min_key: Bytes::from_static(b"a"),
            max_key: Bytes::from_static(b"z"),
        };
        match code % 6 {
            0 | 1 => {
                // Add a run to an existing level or the next fresh one.
                let lvl = (code as usize / 6) % (self.levels.len() + 1);
                if lvl == self.levels.len() {
                    self.levels.push((Vec::new(), None));
                }
                self.next_id += 1;
                let id = self.next_id;
                let active = code.is_multiple_of(2) && self.levels[lvl].1.is_none();
                if active {
                    self.levels[lvl].1 = Some(id);
                } else {
                    self.levels[lvl].0.push(id);
                }
                Some(ManifestEdit::AddRun {
                    level: lvl as u32,
                    active,
                    run: run(id),
                })
            }
            2 => {
                // Seal the first level with an active run.
                let lvl = self.levels.iter().position(|l| l.1.is_some())?;
                let id = self.levels[lvl].1.take().unwrap();
                self.levels[lvl].0.push(id);
                Some(ManifestEdit::SealRun {
                    level: lvl as u32,
                    run_id: id,
                })
            }
            3 => {
                // Remove some existing run.
                let lvl = self
                    .levels
                    .iter()
                    .position(|l| !l.0.is_empty() || l.1.is_some())?;
                let (sealed, active) = &mut self.levels[lvl];
                let id = if let Some(id) = active.take() {
                    id
                } else {
                    sealed.remove(0)
                };
                Some(ManifestEdit::RemoveRun {
                    level: lvl as u32,
                    run_id: id,
                })
            }
            4 => {
                let lvl = (code as usize / 6) % (self.levels.len() + 1);
                if lvl == self.levels.len() {
                    self.levels.push((Vec::new(), None));
                }
                Some(ManifestEdit::SetPolicy {
                    level: lvl as u32,
                    policy: u32::from(code % 4) + 1,
                    pending: code.is_multiple_of(3).then_some(2),
                })
            }
            _ => {
                self.seq += u64::from(code) + 1;
                Some(ManifestEdit::SeqWatermark { seq: self.seq })
            }
        }
    }
}

/// A corruption applied to a valid manifest image (mirrors the WAL fuzz).
#[derive(Debug, Clone)]
enum Corruption {
    BitFlip(usize),
    Truncate(usize),
    Garbage(Vec<u8>),
}

fn corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        3 => any::<usize>().prop_map(Corruption::BitFlip),
        3 => any::<usize>().prop_map(Corruption::Truncate),
        2 => prop::collection::vec(any::<u8>(), 1..64).prop_map(Corruption::Garbage),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Corrupted manifests never panic recovery, and the recovered state
    /// is deterministically one of the committed-batch prefix states —
    /// bit flips, truncation, duplicate/out-of-order bytes can only ever
    /// truncate history, never half-apply or reorder it.
    #[test]
    fn manifest_recovery_of_corrupted_log_yields_a_prefix_state(
        actions in prop::collection::vec(any::<u8>(), 0..40),
        batch_every in 1usize..4,
        corruption in corruption(),
    ) {
        let path = store_root("fuzz").with_extension("manifest");
        let _ = std::fs::remove_file(&path);
        // Build a valid history and snapshot the state after each commit.
        let mut snapshots: Vec<ManifestState> = vec![ManifestState::default()];
        {
            let mut m = Manifest::create(&path, 0).unwrap();
            let mut model = EditModel::default();
            for (i, &code) in actions.iter().enumerate() {
                if let Some(edit) = model.edit_for(code) {
                    m.log(edit);
                }
                if (i + 1) % batch_every == 0 && m.commit().unwrap() {
                    snapshots.push(m.state().clone());
                }
            }
            if m.commit().unwrap() {
                snapshots.push(m.state().clone());
            }
        }
        let mut data = std::fs::read(&path).unwrap();
        match &corruption {
            Corruption::BitFlip(pos) if !data.is_empty() => {
                let pos = pos % data.len();
                data[pos] ^= 1 << (pos % 8);
            }
            Corruption::BitFlip(_) => {}
            Corruption::Truncate(keep) => {
                let keep = keep % (data.len() + 1);
                data.truncate(keep);
            }
            Corruption::Garbage(bytes) => data.extend_from_slice(bytes),
        }
        std::fs::write(&path, &data).unwrap();

        let (m1, _) = Manifest::recover(&path, 0).unwrap(); // must not panic
        let state1 = m1.state().clone();
        drop(m1);
        prop_assert!(
            snapshots.contains(&state1),
            "corruption {:?}: recovered state is not a committed prefix",
            &corruption
        );
        // Determinism: recovering the truncated file again agrees.
        let (m2, _) = Manifest::recover(&path, 0).unwrap();
        prop_assert_eq!(&state1, m2.state(), "recovery must be deterministic");
        let _ = std::fs::remove_file(&path);
    }
}
