//! The concurrent serving frontend's contract, end to end:
//!
//! * **K-client equivalence** — clients over disjoint key slices driving
//!   a served store concurrently leave exactly the state a
//!   single-threaded replay of the same scripts leaves, at
//!   `K ∈ {1, 2, 4}`;
//! * **read-your-writes** — a client immediately re-reading its own
//!   acknowledged write sees it, no matter what the other clients are
//!   doing (FIFO per-shard queues make this structural);
//! * **crash durability** — a [`CrashPoint`] firing mid-serve never
//!   loses a write that was acknowledged before it;
//! * **admission control** (proptest) — across arbitrary token-bucket
//!   rates and bursts, a rejection never drops an acknowledged op:
//!   every `Ok` put is readable, every `Rejected` put never executed.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use proptest::prelude::*;

use ruskey_repro::lsm::CrashPoint;
use ruskey_repro::ruskey::db::RusKeyConfig;
use ruskey_repro::ruskey::sharded::{DurabilityConfig, ShardedRusKey};
use ruskey_repro::ruskey::tuner::NoOpTuner;
use ruskey_repro::ruskey::{ServingConfig, ServingError};
use ruskey_repro::storage::{CostModel, SimulatedDisk, Storage};
use ruskey_repro::workload::{
    bulk_load_pairs, client_scripts, encode_key, OpMix, Operation, WorkloadSpec,
};

fn small_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 4096;
    cfg.lsm.size_ratio = 4;
    cfg
}

fn disk() -> Arc<dyn Storage> {
    SimulatedDisk::new(512, CostModel::NVME)
}

fn mixed_spec(key_space: u64) -> WorkloadSpec {
    WorkloadSpec {
        key_space,
        key_len: 16,
        value_len: 48,
        ..WorkloadSpec::scaled_default(key_space)
    }
    .with_mix(OpMix {
        lookup: 0.4,
        update: 0.4,
        delete: 0.1,
        scan: 0.1,
    })
}

/// Applies one client script through a served frontend, panicking on any
/// serving error (none are expected without faults or rate limits).
fn drive_script(client: &ruskey_repro::ruskey::ServingClient, script: &[Operation]) {
    for op in script {
        match op {
            Operation::Get { key } => {
                client.get(key).expect("get failed");
            }
            Operation::Put { key, value } => {
                client.put(key.clone(), value.clone()).expect("put failed");
            }
            Operation::Delete { key } => {
                client.delete(key.clone()).expect("delete failed");
            }
            Operation::Scan { start, end, limit } => {
                client.scan(start, end, *limit).expect("scan failed");
            }
        }
    }
}

/// Acceptance: K concurrent clients over disjoint key slices are
/// *equivalent* to replaying their scripts single-threaded — the served
/// store's final state (every key, and a full scan) is identical.
#[test]
fn k_clients_equal_single_threaded_replay() {
    const KEY_SPACE: u64 = 2000;
    for &clients in &[1usize, 2, 4] {
        let pairs = bulk_load_pairs(KEY_SPACE, 16, 48, 5);
        let mut served = ShardedRusKey::untuned(small_cfg(), 4, disk());
        served.bulk_load(pairs.clone());
        let mut replay = ShardedRusKey::untuned(small_cfg(), 4, disk());
        replay.bulk_load(pairs);

        let scripts = client_scripts(&mixed_spec(KEY_SPACE), clients, 400, 13);
        let frontend = served.serve(ServingConfig::default()).expect("serve");
        thread::scope(|s| {
            for script in &scripts {
                let client = frontend.client();
                s.spawn(move || drive_script(&client, script));
            }
        });
        let metrics = served.finish_serving(frontend).expect("finish serving");
        assert!(metrics.acked_writes > 0, "scripts must contain writes");
        assert_eq!(
            metrics.requests(),
            (clients * 400) as u64,
            "every scripted op must be admitted and counted"
        );

        // The disjoint key slices make any client interleaving equivalent
        // to the sequential replay: compare every key and the full scan.
        for script in &scripts {
            for op in script {
                let _ = replay_op(&mut replay, op);
            }
        }
        for i in 0..KEY_SPACE {
            let k = encode_key(i, 16);
            assert_eq!(
                served.get(&k),
                replay.get(&k),
                "clients={clients}: key {i} diverged from the replay"
            );
        }
        let lo = encode_key(0, 16);
        let hi = [0xffu8; 17];
        assert_eq!(
            served.scan(&lo, &hi, usize::MAX),
            replay.scan(&lo, &hi, usize::MAX),
            "clients={clients}: full scan diverged from the replay"
        );
    }
}

fn replay_op(db: &mut ShardedRusKey, op: &Operation) -> usize {
    match op {
        Operation::Get { key } => {
            db.get(key);
        }
        Operation::Put { key, value } => db.put(key.clone(), value.clone()),
        Operation::Delete { key } => db.delete(key.clone()),
        Operation::Scan { start, end, limit } => {
            return db.scan(start, end, *limit).len();
        }
    }
    0
}

/// A client that re-reads its own acknowledged write mid-flight must see
/// it — under full concurrency, with every other client hammering its
/// own slice of the same shards.
#[test]
fn clients_read_their_own_writes_under_concurrency() {
    const CLIENTS: u64 = 4;
    const ROUNDS: u64 = 150;
    let mut db = ShardedRusKey::untuned(small_cfg(), 4, disk());
    let frontend = db.serve(ServingConfig::default()).expect("serve");
    thread::scope(|s| {
        for c in 0..CLIENTS {
            let client = frontend.client();
            s.spawn(move || {
                let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();
                for i in 0..ROUNDS {
                    // 40 keys per client, constantly overwritten, so
                    // rereads race other clients' batches on every shard.
                    let key = encode_key(c * 1000 + i % 40, 16);
                    let value = Bytes::from(format!("ryw-{c}-{i}"));
                    client.put(key.clone(), value.clone()).expect("put");
                    model.insert(key.clone(), value);
                    let got = client.get(&key).expect("get");
                    assert_eq!(
                        got.as_ref(),
                        model.get(&key),
                        "client {c} round {i}: lost its own acknowledged write"
                    );
                }
                // And the whole model is intact at the end.
                for (key, want) in &model {
                    assert_eq!(client.get(key).expect("get").as_ref(), Some(want));
                }
            });
        }
    });
    let metrics = db.finish_serving(frontend).expect("finish serving");
    assert_eq!(metrics.acked_writes, CLIENTS * ROUNDS);
}

/// A crash firing mid-serve (WAL fault injection on shard 0) never loses
/// an acknowledged write: recovery must read back every put that
/// returned `Ok` before the crash.
#[test]
fn acknowledged_writes_survive_a_mid_serve_crash() {
    const SHARDS: usize = 2;
    const CLIENTS: u64 = 4;
    const WRITES: u64 = 60;
    let dir = std::env::temp_dir().join(format!("ruskey-serving-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durability = DurabilityConfig::group_commit(&dir);
    // Default (large) write buffer: the simulated disk dies with the
    // store, so the crash leg must recover from the WAL alone — a flush
    // mid-serve would truncate it and move the data onto the lost disk.
    let cfg = RusKeyConfig::scaled_default();
    let mut db = ShardedRusKey::try_with_tuner_durable(
        cfg.clone(),
        SHARDS,
        disk(),
        Box::new(NoOpTuner),
        &durability,
    )
    .expect("open durable store");
    db.shard_mut(0)
        .wal_mut()
        .expect("durable shard has a WAL")
        .arm_crash(CrashPoint::PostAppend, 20);

    let frontend = db
        .serve(ServingConfig {
            batch_ops: 8,
            ..ServingConfig::default()
        })
        .expect("serve");
    let acked: Vec<(Bytes, Bytes)> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = frontend.client();
                s.spawn(move || {
                    let mut acked = Vec::new();
                    for i in 0..WRITES {
                        let key = encode_key(c * 100_000 + i, 16);
                        let value = Bytes::from(format!("crash-{c}-{i}"));
                        match client.put(key.clone(), value.clone()) {
                            Ok(()) => acked.push((key, value)),
                            // The crashed shard's clients see Crashed,
                            // then Stopped once its worker leaves the
                            // serve loop; neither is an acknowledgement.
                            Err(ServingError::Crashed | ServingError::Stopped) => {}
                            Err(e) => panic!("unexpected serving error: {e}"),
                        }
                    }
                    acked
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    db.finish_serving(frontend).expect("finish serving");
    assert!(db.crashed(), "the armed crash must have fired mid-serve");
    assert!(!acked.is_empty(), "some writes must precede the crash");
    drop(db);

    let mut rec = ShardedRusKey::recover(cfg, SHARDS, disk(), Box::new(NoOpTuner), &durability)
        .expect("recover after mid-serve crash");
    for (key, value) in &acked {
        assert_eq!(
            rec.get(key).as_deref(),
            Some(value.as_ref()),
            "acknowledged write lost across the crash"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Across arbitrary admission-control settings, a rejection never
    /// drops an acknowledged op: every put that returned `Ok` is
    /// readable afterwards, every put the bucket rejected never
    /// executed, and the metrics account for exactly the rejections the
    /// client saw.
    #[test]
    fn admission_rejections_never_drop_acknowledged_ops(
        rate in 100u64..3000,
        burst in 1u64..16,
        writes in 40u64..160,
    ) {
        let mut db = ShardedRusKey::untuned(small_cfg(), 2, disk());
        let frontend = db
            .serve(ServingConfig {
                rate_limit_per_sec: rate,
                burst,
                ..ServingConfig::default()
            })
            .expect("serve");
        let client = frontend.client();
        let mut acked = Vec::new();
        let mut rejected = Vec::new();
        for i in 0..writes {
            let key = encode_key(i, 16);
            match client.put(key.clone(), Bytes::from_static(b"admitted")) {
                Ok(()) => acked.push(key),
                Err(ServingError::Rejected { retry_after }) => {
                    prop_assert!(retry_after.as_nanos() > 0);
                    rejected.push(key);
                }
                Err(e) => panic!("unexpected serving error: {e}"),
            }
        }
        let metrics = db.finish_serving(frontend).expect("finish serving");
        prop_assert_eq!(metrics.rejections, rejected.len() as u64);
        prop_assert_eq!(metrics.acked_writes, acked.len() as u64);
        // The burst guarantees at least one acknowledgement.
        prop_assert!(!acked.is_empty());
        for key in &acked {
            prop_assert!(db.get(key).is_some(), "acknowledged op dropped");
        }
        for key in &rejected {
            prop_assert!(db.get(key).is_none(), "rejected op executed anyway");
        }
    }
}
