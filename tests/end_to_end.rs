//! Cross-crate integration tests: the full RusKey stack (workload →
//! store → tuner → transitions) against reference behaviour.

use std::collections::BTreeMap;

use ruskey_repro::lsm::{FlsmTree, LsmConfig, TransitionStrategy};
use ruskey_repro::ruskey::db::{RusKey, RusKeyConfig};
use ruskey_repro::ruskey::tuner::{FixedPolicy, GreedyHeuristic, LazyLeveling};
use ruskey_repro::storage::{CostModel, SimulatedDisk};
use ruskey_repro::workload::{
    bulk_load_pairs, encode_key, OpGenerator, OpMix, Operation, WorkloadSpec,
};

fn small_lsm(transition: TransitionStrategy) -> LsmConfig {
    LsmConfig {
        buffer_bytes: 2048,
        size_ratio: 4,
        transition,
        ..LsmConfig::scaled_default()
    }
}

/// The tree must agree with a BTreeMap reference model under a mixed
/// workload with interleaved policy changes, for every transition strategy.
#[test]
fn tree_matches_reference_model_under_policy_churn() {
    for strategy in TransitionStrategy::ALL {
        let disk = SimulatedDisk::new(512, CostModel::FREE);
        let mut tree = FlsmTree::new(small_lsm(strategy), disk);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        let spec = WorkloadSpec {
            key_space: 300,
            key_len: 16,
            value_len: 24,
            ..WorkloadSpec::scaled_default(300)
        }
        .with_mix(OpMix {
            lookup: 0.3,
            update: 0.5,
            delete: 0.1,
            scan: 0.1,
        });
        let mut gen = OpGenerator::new(spec, 99);

        for step in 0..4000 {
            match gen.next_op() {
                Operation::Get { key } => {
                    let got = tree.get(&key);
                    let want = model.get(key.as_ref());
                    assert_eq!(
                        got.as_deref(),
                        want.map(|v| v.as_slice()),
                        "strategy {strategy:?} step {step}: get mismatch"
                    );
                }
                Operation::Put { key, value } => {
                    model.insert(key.to_vec(), value.to_vec());
                    tree.put(key, value);
                }
                Operation::Delete { key } => {
                    model.remove(key.as_ref());
                    tree.delete(key);
                }
                Operation::Scan { start, end, limit } => {
                    let got = tree.scan(&start, &end, limit);
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(start.to_vec()..end.to_vec())
                        .take(limit)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    assert_eq!(got.len(), want.len(), "strategy {strategy:?} step {step}");
                    for ((gk, gv), (wk, wv)) in got.iter().zip(&want) {
                        assert_eq!(gk.as_ref(), wk.as_slice());
                        assert_eq!(gv.as_ref(), wv.as_slice());
                    }
                }
            }
            // Aggressive policy churn mid-stream.
            if step % 97 == 0 {
                let k = 1 + (step / 97) as u32 % 4;
                for lvl in 0..tree.level_count() {
                    tree.set_policy(lvl, k);
                }
            }
        }
    }
}

/// RusKey with a live tuner preserves all data while mutating policies.
#[test]
fn ruskey_preserves_data_while_tuning() {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 4096;
    cfg.lsm.size_ratio = 4;
    let disk = SimulatedDisk::new(512, CostModel::NVME);
    let mut db = RusKey::with_lerp(cfg, disk);

    let n = 2000u64;
    db.bulk_load(bulk_load_pairs(n, 16, 48, 3));

    let spec = WorkloadSpec {
        key_space: n,
        key_len: 16,
        value_len: 48,
        ..WorkloadSpec::scaled_default(n)
    }
    .with_mix(OpMix::write_heavy());
    let mut gen = OpGenerator::new(spec, 4);
    for _ in 0..30 {
        let ops = gen.take_ops(300);
        db.run_mission(&ops);
    }
    // Every originally loaded key must still resolve (bulk values may have
    // been overwritten by the workload, but the key must exist).
    for id in (0..n).step_by(61) {
        let key = encode_key(id, 16);
        assert!(db.get(&key).is_some(), "key {id} lost during tuning");
    }
}

/// All baseline tuners run end-to-end without violating policy bounds.
#[test]
fn baseline_tuners_respect_bounds() {
    let tuners: Vec<Box<dyn ruskey_repro::ruskey::tuner::Tuner>> = vec![
        Box::new(FixedPolicy::aggressive()),
        Box::new(FixedPolicy::lazy()),
        Box::new(LazyLeveling),
        Box::new(GreedyHeuristic::new(33.0, 67.0)),
    ];
    for tuner in tuners {
        let mut cfg = RusKeyConfig::scaled_default();
        cfg.lsm.buffer_bytes = 4096;
        cfg.lsm.size_ratio = 6;
        let disk = SimulatedDisk::new(512, CostModel::NVME);
        let name = tuner.name();
        let mut db = RusKey::with_tuner(cfg, disk, tuner);
        db.bulk_load(bulk_load_pairs(1500, 16, 48, 5));
        let spec = WorkloadSpec {
            key_space: 1500,
            key_len: 16,
            value_len: 48,
            ..WorkloadSpec::scaled_default(1500)
        };
        let mut gen = OpGenerator::new(spec, 6);
        for _ in 0..10 {
            let report = db.run_mission(&gen.take_ops(200));
            for &k in &report.policies_after {
                assert!((1..=6).contains(&k), "{name}: policy {k} out of [1, T]");
            }
        }
    }
}

/// The Monkey-scheme store works end-to-end and its deeper levels carry
/// higher FPRs (weaker filters) by construction.
#[test]
fn monkey_scheme_end_to_end() {
    let mut cfg = RusKeyConfig::scaled_monkey();
    cfg.lsm.buffer_bytes = 4096;
    cfg.lsm.size_ratio = 4;
    let bloom = cfg.lsm.bloom;
    let disk = SimulatedDisk::new(512, CostModel::NVME);
    let mut db = RusKey::with_lerp(cfg, disk);
    db.bulk_load(bulk_load_pairs(3000, 16, 48, 7));
    let spec = WorkloadSpec {
        key_space: 3000,
        key_len: 16,
        value_len: 48,
        ..WorkloadSpec::scaled_default(3000)
    };
    let mut gen = OpGenerator::new(spec, 8);
    for _ in 0..10 {
        db.run_mission(&gen.take_ops(300));
    }
    for id in (0..3000).step_by(111) {
        assert!(db.get(&encode_key(id, 16)).is_some());
    }
    // Monkey property: bits per key non-increasing with depth.
    let t = 4;
    let mut prev = f64::INFINITY;
    for lvl in 0..db.tree().level_count() {
        let bits = bloom.bits_for_level(lvl, t);
        assert!(bits <= prev);
        prev = bits;
    }
}

/// Greedy transitions must not lose data even when fired repeatedly while
/// the tree is mid-cascade.
#[test]
fn repeated_greedy_transitions_preserve_data() {
    let disk = SimulatedDisk::new(512, CostModel::FREE);
    let mut tree = FlsmTree::new(small_lsm(TransitionStrategy::Greedy), disk);
    let mut expected = BTreeMap::new();
    for i in 0..1500u64 {
        let key = encode_key(i, 16);
        let val = vec![(i % 251) as u8; 32];
        tree.put(key.clone(), val.clone());
        expected.insert(key, val);
        if i % 50 == 0 {
            let k = 1 + (i / 50) as u32 % 4;
            for lvl in 0..tree.level_count() {
                tree.set_policy(lvl, k);
            }
        }
    }
    for (key, val) in &expected {
        assert_eq!(tree.get(key).as_deref(), Some(val.as_slice()));
    }
}
