//! Per-shard learned tuning and hot-shard mitigation.
//!
//! Three contracts are pinned here:
//!
//! 1. **N = 1 bit-identity**: a one-shard per-shard-Lerp store is the
//!    global-Lerp store — same seed, same reward slice (one shard's
//!    slice *is* the merged report), same observation, so every mission
//!    must produce identical policies and virtual-time counters. This is
//!    what makes `TunerStrategy::PerShard` a strict generalization of
//!    the paper's single-agent loop rather than a second code path.
//! 2. **Mitigation is observationally invisible**: re-homing viral keys
//!    changes *where* data lives, never *what* reads return — a
//!    proptest drives a skewed churn of missions and ad-hoc ops against
//!    a `BTreeMap` model with balancing armed throughout.
//! 3. **Mitigation works and survives restarts**: a viral key range
//!    actually triggers migration (`rebalances() > 0`), drops the
//!    observed imbalance, and a durable store recovers both the routing
//!    overrides and any half-finished migration the crash left behind.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use ruskey_repro::ruskey::db::RusKeyConfig;
use ruskey_repro::ruskey::sharded::{DurabilityConfig, ShardedRusKey, TunerStrategy};
use ruskey_repro::ruskey::tuner::NoOpTuner;
use ruskey_repro::storage::{CostModel, SimulatedDisk, Storage};
use ruskey_repro::workload::routing::{shard_for_key, BalanceConfig};
use ruskey_repro::workload::{
    bulk_load_pairs, encode_key, OpGenerator, OpMix, Operation, WorkloadSpec,
};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn wal_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ruskey-tuneq-{tag}-{}-{n}", std::process::id()))
}

/// Small tree + a Lerp cadence fast enough that agents actually tune
/// within the test's mission budget (the defaults wait 60 missions).
fn tuned_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 4096;
    cfg.lsm.size_ratio = 4;
    cfg.lerp.min_tune_missions = 6;
    cfg.lerp.stability_window = 4;
    cfg
}

fn disk() -> Arc<dyn Storage> {
    SimulatedDisk::new(512, CostModel::NVME)
}

/// Durable-test config: the buffer never flushes, so the (real) WAL
/// alone carries durability — the simulated data pages do not survive a
/// drop.
fn big_buffer_cfg() -> RusKeyConfig {
    let mut cfg = tuned_cfg();
    cfg.lsm.buffer_bytes = 1 << 20;
    cfg
}

fn mixed_spec(key_space: u64) -> WorkloadSpec {
    WorkloadSpec {
        key_space,
        key_len: 16,
        value_len: 48,
        ..WorkloadSpec::scaled_default(key_space)
    }
    .with_mix(OpMix {
        lookup: 0.35,
        update: 0.4,
        delete: 0.1,
        scan: 0.15,
    })
}

/// Aggressive mitigation knobs so tests trigger migration quickly.
fn eager_balance() -> BalanceConfig {
    BalanceConfig {
        imbalance_threshold: 1.2,
        min_ops: 64,
        max_moves: 4,
        capacity: 32,
        decay: 0.5,
    }
}

/// Acceptance: at one shard, the per-shard strategy is **bit-identical**
/// to the global strategy — every mission, every tuned policy, every
/// virtual-time counter. The per-shard reward slice of a one-shard store
/// carries exactly the merged report's signal, and shard 0 keeps the
/// unmodified Lerp seed, so any divergence here means the per-shard
/// plumbing distorted the signal path.
#[test]
fn per_shard_lerp_at_one_shard_is_bit_identical_to_global() {
    let mut global = ShardedRusKey::with_lerp(tuned_cfg(), 1, disk());
    let mut per_shard = ShardedRusKey::with_per_shard_lerp(tuned_cfg(), 1, disk());
    assert_eq!(global.tuner_strategy(), TunerStrategy::Global);
    assert_eq!(per_shard.tuner_strategy(), TunerStrategy::PerShard);

    let pairs = bulk_load_pairs(2000, 16, 48, 7);
    global.bulk_load(pairs.clone());
    per_shard.bulk_load(pairs);

    let mut g1 = OpGenerator::new(mixed_spec(2000), 9);
    let mut g2 = OpGenerator::new(mixed_spec(2000), 9);
    let mut tuned_missions = 0usize;
    for mission in 0..40 {
        let ops1 = g1.take_ops(250);
        let ops2 = g2.take_ops(250);
        assert_eq!(ops1, ops2, "generators must agree");
        let r1 = global.run_mission(&ops1);
        let r2 = per_shard.run_mission(&ops2);
        assert_eq!(r1.ops, r2.ops, "mission {mission}");
        assert_eq!(r1.lookups, r2.lookups, "mission {mission}");
        assert_eq!(r1.updates, r2.updates, "mission {mission}");
        assert_eq!(r1.scans, r2.scans, "mission {mission}");
        assert_eq!(r1.gamma(), r2.gamma(), "mission {mission}");
        assert_eq!(
            r1.end_to_end_ns, r2.end_to_end_ns,
            "mission {mission}: virtual time"
        );
        assert_eq!(
            r1.device_busy_ns, r2.device_busy_ns,
            "mission {mission}: device-busy time"
        );
        assert_eq!(r1.commit_ns, r2.commit_ns, "mission {mission}");
        assert_eq!(
            r1.policies_after, r2.policies_after,
            "mission {mission}: the agents diverged"
        );
        assert_eq!(
            r1.shard_policies_after, r2.shard_policies_after,
            "mission {mission}: per-shard policy report"
        );
        if r1.policies_after.iter().any(|&k| k != 1) {
            tuned_missions += 1;
        }
    }
    assert!(
        tuned_missions > 0,
        "the tuners never moved a policy — the equivalence was vacuous"
    );
}

/// Acceptance: a viral key range on one shard triggers mitigation — keys
/// re-home to the coldest shard, the pass counter advances, the observed
/// imbalance drops — and every re-homed key still reads its latest
/// value.
#[test]
fn viral_keys_are_rehomed_and_stay_readable() {
    let shards = 4;
    let mut db = ShardedRusKey::untuned(tuned_cfg(), shards, disk());
    db.bulk_load(bulk_load_pairs(2000, 16, 48, 3));
    db.enable_balancing(eager_balance());

    // A handful of keys that all hash to the same shard: the viral set.
    let hot_shard = 2usize;
    let viral: Vec<Bytes> = (0..4000u64)
        .map(|id| encode_key(id, 16))
        .filter(|k| shard_for_key(k, shards) == hot_shard)
        .take(6)
        .collect();
    assert_eq!(viral.len(), 6, "key space too small to find viral keys");

    // Missions that hammer the viral set (~90% of point traffic).
    let mut g = OpGenerator::new(mixed_spec(2000), 31);
    let mut peak_imbalance = 0.0f64;
    for round in 0..12 {
        let mut ops = Vec::with_capacity(300);
        for (i, op) in g.take_ops(300).into_iter().enumerate() {
            match op {
                Operation::Get { .. } if i % 10 != 0 => ops.push(Operation::Get {
                    key: viral[i % viral.len()].clone(),
                }),
                Operation::Put { value, .. } if i % 10 != 0 => ops.push(Operation::Put {
                    key: viral[i % viral.len()].clone(),
                    value,
                }),
                other => ops.push(other),
            }
        }
        db.run_mission(&ops);
        peak_imbalance = peak_imbalance.max(db.load_imbalance());
        if round == 11 {
            assert!(
                db.load_imbalance() < peak_imbalance,
                "mitigation never reduced the imbalance: peak {peak_imbalance}, now {}",
                db.load_imbalance()
            );
        }
    }
    assert!(db.rebalances() > 0, "no balancing pass ever migrated");
    assert!(db.rehomed_keys() > 0, "no key was re-homed");
    assert!(
        peak_imbalance > 1.2,
        "the workload never skewed ({peak_imbalance}) — the test is vacuous"
    );

    // Every viral key reads back its latest written value (wherever it
    // lives now), and a scan over the whole space still sees each once.
    for k in &viral {
        let direct = db.get(k);
        let scanned: Vec<_> = db
            .scan(k, &encode_key(4001, 16), 1)
            .into_iter()
            .filter(|(sk, _)| sk == k)
            .collect();
        match direct {
            Some(v) => assert_eq!(scanned, vec![(k.clone(), v)], "scan diverged from get"),
            None => assert!(scanned.is_empty(), "scan resurrected a deleted key"),
        }
    }
}

/// Mitigation under churn never changes what reads observe: missions and
/// ad-hoc ops with a proptest-chosen skew run against a `BTreeMap`
/// model, with balancing armed the whole time so migrations interleave
/// with the workload.
#[derive(Debug, Clone)]
enum ChurnOp {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u16),
    Mission,
}

fn churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| ChurnOp::Put(k, v)),
        1 => any::<u16>().prop_map(ChurnOp::Delete),
        4 => any::<u16>().prop_map(ChurnOp::Get),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| ChurnOp::Scan(a, b)),
        1 => Just(ChurnOp::Mission),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn mitigation_preserves_observational_equivalence(
        ops in prop::collection::vec(churn_op(), 1..250),
        hot in any::<u16>(),
        shards_idx in 0usize..2,
    ) {
        let shards = [2usize, 4][shards_idx];
        let mut db = ShardedRusKey::untuned(tuned_cfg(), shards, disk());
        db.enable_balancing(eager_balance());
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();
        // Skew every key toward a small hot neighborhood so the balancer
        // actually fires mid-sequence instead of idling.
        let squash = |k: u16| -> u64 { if k.is_multiple_of(3) { (k % 512) as u64 } else { (hot % 8) as u64 } };
        let mut mission_no = 0u64;
        for op in ops {
            match op {
                ChurnOp::Put(k, v) => {
                    let key = encode_key(squash(k), 16);
                    model.insert(key.clone(), Bytes::from(vec![v]));
                    db.put(key, vec![v]);
                }
                ChurnOp::Delete(k) => {
                    let key = encode_key(squash(k), 16);
                    model.remove(&key);
                    db.delete(key);
                }
                ChurnOp::Get(k) => {
                    let key = encode_key(squash(k), 16);
                    prop_assert_eq!(
                        db.get(&key).as_deref(),
                        model.get(&key).map(|v| v.as_ref()),
                        "get diverged"
                    );
                }
                ChurnOp::Scan(a, b) => {
                    let (a, b) = ((a % 512) as u64, (b % 512) as u64);
                    let (lo, hi) = (a.min(b), a.max(b));
                    let (s, e) = (encode_key(lo, 16), encode_key(hi, 16));
                    let got = db.scan(&s, &e, usize::MAX);
                    let want: Vec<_> = model
                        .range(s.clone()..e.clone())
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want, "scan diverged");
                }
                ChurnOp::Mission => {
                    // A mission boundary is where migration runs; give it
                    // skewed traffic to chew on.
                    let key = encode_key((hot % 8) as u64, 16);
                    let ops: Vec<Operation> = (0..96)
                        .map(|i| {
                            if i % 4 == 0 {
                                Operation::Put { key: key.clone(), value: encode_key(mission_no, 48) }
                            } else {
                                Operation::Get { key: key.clone() }
                            }
                        })
                        .collect();
                    db.run_mission(&ops);
                    model.insert(key, encode_key(mission_no, 48));
                    mission_no += 1;
                }
            }
        }
    }
}

/// Acceptance: routing overrides and half-finished migrations survive a
/// crash. The routes file is written *before* data moves, so recovery
/// must settle an override whose key still sits at its hash home —
/// re-copying it to the target shard without losing the value.
#[test]
fn recovery_settles_interrupted_migration() {
    let dir = wal_dir("settle");
    let dur = DurabilityConfig::group_commit(&dir);
    let shards = 2usize;

    // A key homed on shard 0 by hash.
    let key = (0..1000u64)
        .map(|id| encode_key(id, 16))
        .find(|k| shard_for_key(k, shards) == 0)
        .unwrap();
    let value = Bytes::from_static(b"survives-the-crash");

    {
        let mut db = ShardedRusKey::try_with_tuner_durable(
            big_buffer_cfg(),
            shards,
            disk(),
            Box::new(NoOpTuner),
            &dur,
        )
        .unwrap();
        // One mission makes the write durable (acked after the barrier).
        db.run_mission(&[Operation::Put {
            key: key.clone(),
            value: value.clone(),
        }]);
    }

    // Simulate a crash *between* the route write and the data copy: the
    // routes file says shard 1 (moved from shard 0), the value still
    // sits on shard 0.
    let mut line = String::from("1 0 ");
    for b in key.iter() {
        line.push_str(&format!("{b:02x}"));
    }
    line.push('\n');
    std::fs::write(dir.join("ROUTES"), line).unwrap();

    let mut db =
        ShardedRusKey::recover(big_buffer_cfg(), shards, disk(), Box::new(NoOpTuner), &dur)
            .unwrap();
    assert_eq!(db.rehomed_keys(), 1, "the override must be recovered");
    assert_eq!(db.get(&key), Some(value.clone()), "the value must settle");
    // The settled state is itself durable: recover once more and the key
    // still reads through the override.
    drop(db);
    let mut db =
        ShardedRusKey::recover(big_buffer_cfg(), shards, disk(), Box::new(NoOpTuner), &dur)
            .unwrap();
    assert_eq!(db.rehomed_keys(), 1);
    assert_eq!(db.get(&key), Some(value));

    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: a live mitigation pass on a durable store round-trips —
/// after migrating viral keys, dropping the store, and recovering, every
/// key (re-homed or not) reads its last acknowledged value.
#[test]
fn durable_mitigation_round_trips_through_recovery() {
    let dir = wal_dir("roundtrip");
    let dur = DurabilityConfig::group_commit(&dir);
    let shards = 4usize;
    let hot_shard = 1usize;

    let viral: Vec<Bytes> = (0..4000u64)
        .map(|id| encode_key(id, 16))
        .filter(|k| shard_for_key(k, shards) == hot_shard)
        .take(5)
        .collect();

    let mut expected: BTreeMap<Bytes, Bytes> = BTreeMap::new();
    {
        let mut db = ShardedRusKey::try_with_tuner_durable(
            big_buffer_cfg(),
            shards,
            disk(),
            Box::new(NoOpTuner),
            &dur,
        )
        .unwrap();
        db.enable_balancing(eager_balance());
        for round in 0..10u64 {
            let mut ops = Vec::new();
            for (i, k) in viral.iter().enumerate() {
                let v = encode_key(round * 100 + i as u64, 48);
                expected.insert(k.clone(), v.clone());
                ops.push(Operation::Put {
                    key: k.clone(),
                    value: v,
                });
                for _ in 0..10 {
                    ops.push(Operation::Get { key: k.clone() });
                }
            }
            // A sprinkle of cold traffic so other shards exist in the
            // sketch.
            let cold = encode_key(3000 + round, 16);
            expected.insert(cold.clone(), Bytes::from_static(b"cold"));
            ops.push(Operation::Put {
                key: cold,
                value: Bytes::from_static(b"cold"),
            });
            db.run_mission(&ops);
        }
        assert!(db.rebalances() > 0, "the viral set never migrated");
        assert!(db.rehomed_keys() > 0);
    }

    let mut db =
        ShardedRusKey::recover(big_buffer_cfg(), shards, disk(), Box::new(NoOpTuner), &dur)
            .unwrap();
    assert!(db.rehomed_keys() > 0, "overrides lost in recovery");
    for (k, v) in &expected {
        assert_eq!(db.get(k).as_ref(), Some(v), "key {k:?} lost or stale");
    }
    // Scans see each key exactly once — no duplicate from a half-dead
    // migration source.
    let all = db.scan(&encode_key(0, 16), &encode_key(4001, 16), usize::MAX);
    let mut seen = std::collections::HashSet::new();
    for (k, _) in &all {
        assert!(seen.insert(k.clone()), "key {k:?} appears twice in a scan");
    }

    std::fs::remove_dir_all(&dir).ok();
}
