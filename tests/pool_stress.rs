//! Deterministic concurrency stress suite for the persistent shard
//! worker pool.
//!
//! The pool rewrite (one long-lived worker per shard, reused across
//! missions, with the group-commit legs overlapped on the workers) makes
//! three guarantees that must be *tested*, not assumed from the spawn
//! structure:
//!
//! 1. **Pool reuse**: the same OS threads serve every mission — worker
//!    thread IDs are stable across ≥ 10 consecutive missions at
//!    `N ∈ {1, 2, 4, 8}`, and `N` distinct threads participate.
//! 2. **Determinism**: pooled parallel execution is bit-identical to a
//!    single-threaded replay of each shard's lane (results *and* the
//!    per-domain virtual-time accounting).
//! 3. **Clean failure**: a panicking shard worker surfaces as a
//!    [`MissionError`] on the mission thread — never a hang, never a
//!    store that limps on with a missing shard.
//!
//! A proptest additionally pins the overlapped-barrier composition
//! (`commit_ns` = max over concurrent legs ≤ `commit_busy_ns` = their
//! sum) and that the WAL traffic counters (`wal_appends`, `wal_syncs`)
//! are invariant under the pool rewrite for any op mix: they must equal
//! the ground truth derived from routing alone.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use ruskey_repro::ruskey::db::RusKeyConfig;
use ruskey_repro::ruskey::sharded::{DurabilityConfig, MissionError, ShardedRusKey};
use ruskey_repro::ruskey::tuner::NoOpTuner;
use ruskey_repro::storage::{CostModel, SimulatedDisk, Storage};
use ruskey_repro::workload::routing::{partition_ops, shard_for_key};
use ruskey_repro::workload::{
    bulk_load_pairs, encode_key, OpGenerator, OpMix, Operation, WorkloadSpec,
};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn wal_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ruskey-poolstress-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn small_cfg() -> RusKeyConfig {
    let mut cfg = RusKeyConfig::scaled_default();
    cfg.lsm.buffer_bytes = 4096;
    cfg.lsm.size_ratio = 4;
    cfg
}

fn disk() -> Arc<dyn Storage> {
    SimulatedDisk::new(512, CostModel::NVME)
}

fn mixed_spec(key_space: u64) -> WorkloadSpec {
    WorkloadSpec {
        key_space,
        key_len: 16,
        value_len: 48,
        ..WorkloadSpec::scaled_default(key_space)
    }
    .with_mix(OpMix {
        lookup: 0.35,
        update: 0.4,
        delete: 0.1,
        scan: 0.15,
    })
}

/// Acceptance: across ≥ 10 consecutive missions the pool serves every
/// shard from the *same* OS thread (reuse, not respawn), with exactly
/// `N` distinct worker threads participating, at `N ∈ {1, 2, 4, 8}`.
#[test]
fn worker_threads_are_stable_across_missions() {
    const MISSIONS: usize = 12;
    for &n in &[1usize, 2, 4, 8] {
        let mut db = ShardedRusKey::untuned(small_cfg(), n, disk());
        db.bulk_load(bulk_load_pairs(2000, 16, 48, 31));
        let mut g = OpGenerator::new(mixed_spec(2000), 33);
        assert!(
            db.last_worker_threads().is_empty(),
            "no dispatch yet, no worker IDs"
        );
        db.run_mission(&g.take_ops(200));
        let first = db.last_worker_threads().to_vec();
        assert_eq!(first.len(), n, "{n} shards: one worker per shard");
        assert_eq!(
            first.iter().collect::<HashSet<_>>().len(),
            n,
            "{n} shards: workers must be distinct OS threads"
        );
        for mission in 1..MISSIONS {
            db.run_mission(&g.take_ops(200));
            assert_eq!(
                db.last_worker_threads(),
                &first[..],
                "{n} shards, mission {mission}: worker threads changed — the \
                 pool respawned instead of reusing its threads"
            );
            assert_eq!(db.last_parallelism(), n);
        }
        // The standalone commit barrier runs on the same workers too.
        db.group_commit();
        assert_eq!(
            db.last_worker_threads(),
            &first[..],
            "{n} shards: the commit barrier must reuse the mission workers"
        );
    }
}

/// Acceptance: a multi-mission soak on the pool is bit-identical to a
/// single-threaded replay of each shard's lane — every shard's full
/// statistics snapshot (op counters, per-level times, virtual clock) and
/// the merged get results match a one-shard store executing the lane on
/// the shard's key partition. Seeded op streams make the soak exactly
/// reproducible.
#[test]
fn pooled_missions_equal_single_threaded_lane_replay() {
    const MISSIONS: usize = 10;
    for &n in &[1usize, 2, 4, 8] {
        let pairs = bulk_load_pairs(2000, 16, 48, 41);
        let mut pooled = ShardedRusKey::untuned(small_cfg(), n, disk());
        pooled.bulk_load(pairs.clone());

        let mut g = OpGenerator::new(mixed_spec(2000), 43);
        let missions: Vec<Vec<Operation>> = (0..MISSIONS).map(|_| g.take_ops(150)).collect();
        for ops in &missions {
            pooled.run_mission(ops);
        }

        for shard in 0..n {
            let mut solo = ShardedRusKey::untuned(small_cfg(), 1, disk());
            solo.bulk_load(
                pairs
                    .iter()
                    .filter(|(k, _)| shard_for_key(k, n) == shard)
                    .cloned()
                    .collect(),
            );
            for ops in &missions {
                let lane: Vec<Operation> = partition_ops(ops, n)[shard]
                    .iter()
                    .map(|op| (*op).clone())
                    .collect();
                solo.run_mission(&lane);
            }
            assert_eq!(
                pooled.shard(shard).stats(),
                solo.shard(0).stats(),
                "n={n} shard={shard}: pooled execution diverged from the \
                 single-threaded lane replay"
            );
        }

        // Point lookups agree with a single-threaded replay of the whole
        // stream (shard-merged view).
        let mut reference = ShardedRusKey::untuned(small_cfg(), 1, disk());
        reference.bulk_load(pairs);
        for ops in &missions {
            reference.run_mission(ops);
        }
        for key_id in (0..2000u64).step_by(37) {
            let k = encode_key(key_id, 16);
            assert_eq!(
                pooled.get(&k),
                reference.get(&k),
                "n={n} key={key_id}: pooled get diverged"
            );
        }
    }
}

/// Acceptance: a shard worker panic mid-soak surfaces as a clean
/// [`MissionError`] naming the shard — the mission returns (no hang),
/// the engine refuses further work instead of running without the
/// shard, and dropping the store joins cleanly.
#[test]
fn worker_panic_surfaces_as_clean_error_not_a_hang() {
    for &n in &[2usize, 4] {
        let mut db = ShardedRusKey::untuned(small_cfg(), n, disk());
        db.bulk_load(bulk_load_pairs(800, 16, 48, 51));
        let mut g = OpGenerator::new(mixed_spec(800), 53);
        for _ in 0..3 {
            db.try_run_mission(&g.take_ops(100)).expect("healthy pool");
        }
        let victim = n - 1;
        db.inject_worker_panic(victim);
        let err = db
            .try_run_mission(&g.take_ops(100))
            .expect_err("a panicked worker must fail the mission");
        match err {
            MissionError::WorkerPanicked { shard } | MissionError::WorkerUnavailable { shard } => {
                assert_eq!(shard, victim, "n={n}: wrong shard blamed");
            }
            MissionError::Wal { .. } => panic!("n={n}: wrong error kind: {err}"),
        }
        // The engine stays dead — later missions and barriers error too.
        assert!(db.try_run_mission(&g.take_ops(50)).is_err());
        assert!(db.try_group_commit().is_err());
        drop(db); // must join without hanging or double-panicking
    }
}

/// One step of the random durable workload (update-only so the WAL
/// ground truth is derivable from routing alone).
#[derive(Debug, Clone)]
enum PoolOp {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| PoolOp::Put(k % 200, v)),
        1 => any::<u16>().prop_map(|k| PoolOp::Delete(k % 200)),
        2 => any::<u16>().prop_map(|k| PoolOp::Get(k % 200)),
    ]
}

fn to_operation(op: &PoolOp) -> Operation {
    match *op {
        PoolOp::Put(k, v) => Operation::Put {
            key: encode_key(k as u64, 16),
            value: bytes::Bytes::from(vec![v; 8]),
        },
        PoolOp::Delete(k) => Operation::Delete {
            key: encode_key(k as u64, 16),
        },
        PoolOp::Get(k) => Operation::Get {
            key: encode_key(k as u64, 16),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// For any op mix and shard count, the mission report of a durable
    /// pooled store obeys the overlapped-barrier composition
    /// (`commit_ns` = max over concurrent legs ≤ `commit_busy_ns` =
    /// their sum, with equality at one shard) and its WAL counters are
    /// invariant under the pool rewrite: `wal_appends` equals the
    /// mission's write count and `wal_syncs` equals the number of shards
    /// whose lane carried at least one write — ground truth derived from
    /// routing, independent of the executor.
    #[test]
    fn commit_composition_and_wal_counters_match_routing_ground_truth(
        ops in prop::collection::vec(pool_op(), 1..120),
        shards in 1usize..5,
    ) {
        let dir = wal_dir("proptest");
        let dur = DurabilityConfig::group_commit(&dir);
        // A buffer large enough that nothing flushes mid-mission: every
        // logged record is acknowledged by the barrier fsync, so the
        // sync ground truth is exactly "lanes with ≥ 1 write".
        let mut cfg = RusKeyConfig::scaled_default();
        cfg.lsm.buffer_bytes = 1 << 20;
        cfg.lsm.size_ratio = 4;
        let mut db = ShardedRusKey::try_with_tuner_durable(
            cfg,
            shards,
            disk(),
            Box::new(NoOpTuner),
            &dur,
        )
        .expect("open durable store");

        let mission: Vec<Operation> = ops.iter().map(to_operation).collect();
        let writes = mission
            .iter()
            .filter(|o| matches!(o, Operation::Put { .. } | Operation::Delete { .. }))
            .count() as u64;
        let lanes_with_writes = partition_ops(&mission, shards)
            .iter()
            .filter(|lane| {
                lane.iter()
                    .any(|o| matches!(o, Operation::Put { .. } | Operation::Delete { .. }))
            })
            .count() as u64;

        let r = db.run_mission(&mission);
        prop_assert_eq!(r.wal_appends, writes, "every write logged exactly once");
        prop_assert_eq!(
            r.wal_syncs, lanes_with_writes,
            "one fsync per shard whose lane wrote, none for idle shards"
        );
        prop_assert_eq!(r.wal_synced, r.wal_appends, "the barrier acknowledges the batch");
        prop_assert!(
            r.commit_ns <= r.commit_busy_ns,
            "barrier latency (max, {}) exceeded the sequential sum ({})",
            r.commit_ns, r.commit_busy_ns
        );
        if shards == 1 {
            prop_assert_eq!(r.commit_ns, r.commit_busy_ns, "one shard: max == sum");
        }
        if writes > 0 {
            prop_assert!(r.commit_ns > 0, "a written batch has a nonzero barrier cost");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
