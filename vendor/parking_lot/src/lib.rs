//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free guard
//! API (`lock()`/`read()`/`write()` return guards directly, recovering
//! from poisoning instead of returning `Result`s). Performance
//! characteristics differ from the real crate but semantics do not.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
