//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the real `bytes` API the workspace uses: a
//! cheaply-cloneable, immutable byte container backed by `Arc<[u8]>` with
//! zero-copy `slice`. Semantics (ordering, equality, hashing) match the
//! real crate; `from_static` copies instead of borrowing, which is
//! observationally equivalent for this workspace.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice (copied here, borrowed in the
    /// real crate — indistinguishable to callers).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let len = data.len();
        Self { data, off: 0, len }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a zero-copy sub-slice for the given range.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds (len {})",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Copies the bytes into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::from(v.into_boxed_slice()),
            off: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref_slice().cmp(other.as_ref_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..).len(), 3);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::from_static(b"abc") < Bytes::from_static(b"abd"));
        assert!(Bytes::from_static(b"ab") < Bytes::from_static(b"abc"));
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::copy_from_slice(b"xyz");
        assert_eq!(b, *b"xyz".as_slice());
        assert_eq!(b.as_ref(), b"xyz");
        assert_eq!(b.to_vec(), vec![b'x', b'y', b'z']);
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![0u8; 64]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 64);
        assert!(!b.is_empty());
    }
}
