//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the `proptest!`/`prop_oneof!` macros, `any`, `Just`, range
//! strategies, `prop_map`, tuple strategies, and the `prop::collection`
//! constructors. Inputs are generated from a deterministic per-test,
//! per-case RNG. Failing cases are **not shrunk** — the assert message
//! plus the deterministic seed stand in for shrinking.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 RNG used to generate test inputs.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG for (test-name hash, case index).
    pub fn deterministic(name_hash: u64, case: u64) -> Self {
        Self(name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() as u128 % (hi - lo) as u128) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a test name, for per-test seeds.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// One weighted arm of a [`Union`]: a weight plus a boxed generator.
pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted union of boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
    total: u64,
}

impl<V> Union<V> {
    /// Creates a union; weights must be positive.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted arm"
        );
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, f) in &self.arms {
            if pick < *w as u64 {
                return f(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`prop::collection::...`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.start, self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s with sizes drawn from `size` (best-effort when
    /// the element domain is smaller than the requested size).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rng.usize_in(self.size.start, self.size.end);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generates `BTreeMap`s with sizes drawn from `size` (best-effort when
    /// the key domain is smaller than the requested size).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = rng.usize_in(self.size.start, self.size.end);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::...`).
pub mod prop {
    pub use crate::collection;
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a property holds (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality (plain `assert_eq!` — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((
                $weight as u32,
                {
                    let __s = $strategy;
                    Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&__s, rng)) as Box<dyn Fn(&mut $crate::TestRng) -> _>
                },
            )),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// runs `cases` times with deterministically seeded random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expands the function list of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..cfg.cases as u64 {
                let mut __rng = $crate::TestRng::deterministic($crate::fnv(stringify!($name)), __case);
                $(let $pat = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(1u8), 1 => Just(0u8)];
        let mut rng = crate::TestRng::deterministic(1, 1);
        let ones: u32 = (0..10_000).map(|_| s.generate(&mut rng) as u32).sum();
        assert!((8500..9500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::TestRng::deterministic(2, 0);
        let v = prop::collection::vec(any::<u8>(), 3..4).generate(&mut rng);
        assert_eq!(v.len(), 3);
        let s: BTreeSet<u32> = prop::collection::btree_set(any::<u32>(), 5..6).generate(&mut rng);
        assert_eq!(s.len(), 5);
        let m = prop::collection::btree_map(any::<u16>(), any::<u8>(), 2..8).generate(&mut rng);
        assert!((2..8).contains(&m.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_in_range(x in 3u32..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (any::<u16>(), any::<u8>()).prop_map(|(a, b)| (a as u32, b))) {
            prop_assert_eq!(pair.0, pair.0);
        }
    }
}
