//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of `rand` the workspace uses: `rngs::StdRng` (a
//! deterministic xoshiro256** generator seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`, `gen_range`, and `fill`. Streams are deterministic per seed but
//! are not bit-compatible with the real `rand` crate — nothing in the
//! workspace depends on the exact stream, only on determinism and
//! distribution quality.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256** seeded via
    /// SplitMix64 (not bit-compatible with `rand`'s ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&w));
            let z = r.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[(r.gen_range(-1i32..=1) + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = vec![0u8; 13];
        r.fill(buf.as_mut_slice());
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformity_is_roughly_flat() {
        let mut r = StdRng::seed_from_u64(5);
        let mut h = [0u32; 16];
        for _ in 0..160_000 {
            h[r.gen_range(0usize..16)] += 1;
        }
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(*max < 2 * *min, "histogram too skewed: {min}..{max}");
    }
}
