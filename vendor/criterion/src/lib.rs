//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`, `black_box`) backed by a
//! simple wall-clock loop: a short warm-up, then timed iterations bounded
//! by both `sample_size` and `measurement_time`, reporting mean ns/iter.
//! No statistics, plots, or baselines — just honest timings.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility; this
/// shim always materializes one input per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    budget: Duration,
    elapsed_ns: f64,
    measured_iters: u64,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut done = 0u64;
        let start = Instant::now();
        while done < self.iters && start.elapsed() < self.budget {
            black_box(routine());
            done += 1;
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
        self.measured_iters = done.max(1);
    }

    /// Times `routine` over inputs freshly produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        let mut done = 0u64;
        let mut spent = Duration::ZERO;
        while done < self.iters && spent < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            spent += t0.elapsed();
            done += 1;
        }
        self.elapsed_ns = spent.as_nanos() as f64;
        self.measured_iters = done.max(1);
    }
}

/// Top-level benchmark registry and configuration.
pub struct Criterion {
    sample_size: u64,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`;
        // in that mode run each benchmark once, as real criterion does.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the target number of timed iterations.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the measurement time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (accepted for compatibility).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let (iters, budget) = if self.test_mode {
            (1, Duration::from_secs(3600))
        } else {
            (self.sample_size, self.measurement_time)
        };
        let mut b = Bencher {
            iters,
            budget,
            elapsed_ns: 0.0,
            measured_iters: 1,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            println!(
                "{name}: {:.0} ns/iter ({} iters)",
                b.elapsed_ns / b.measured_iters as f64,
                b.measured_iters
            );
        }
        self
    }
}

/// Declares a named benchmark group with a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routines() {
        let mut calls = 0u32;
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .bench_function("counting", |b| b.iter(|| calls += 1));
        assert!(calls >= 2, "warm-up + at least one timed iter, got {calls}");
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(50));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
